#ifndef FARMER_SERVE_INDEX_H_
#define FARMER_SERVE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataset/types.h"
#include "serve/snapshot.h"

namespace farmer {
namespace serve {

/// Posting lists partitioned round-robin by item id into `num_banks`
/// banks. The serve event loop passes one bank per shard so the posting
/// storage a shard walks most often clusters together instead of
/// interleaving with every other shard's working set — the list for
/// item i lives in bank i % num_banks at slot i / num_banks. Lookup is
/// two indexed loads either way; with num_banks == 1 the layout
/// degenerates to the classic single vector-of-vectors.
class PostingBanks {
 public:
  PostingBanks() = default;
  PostingBanks(std::size_t universe, std::size_t num_banks);

  std::vector<std::uint32_t>& Mutable(std::size_t id) {
    return banks_[id % num_banks_][id / num_banks_];
  }
  const std::vector<std::uint32_t>& Get(std::size_t id) const {
    return banks_[id % num_banks_][id / num_banks_];
  }
  /// Number of ids the banks were sized for; ids at or past this bound
  /// have no posting list (callers must range-check first).
  std::size_t universe() const { return universe_; }
  std::size_t num_banks() const { return num_banks_; }

 private:
  std::size_t universe_ = 0;
  std::size_t num_banks_ = 1;
  std::vector<std::vector<std::vector<std::uint32_t>>> banks_;
};

/// In-memory query engine over a loaded snapshot.
///
/// Construction builds sorted projections (by confidence and by
/// chi-square) and a per-item posting-list inverted index, so each query
/// type an analyst or classifier issues is answered without scanning the
/// whole store:
///
///   * top-k by confidence / chi-square      O(k) off the projection
///   * filter by min-support + min-confidence  O(log n + answer) via
///     binary search on the confidence projection
///   * antecedent-contains(items)            posting-list intersection,
///     O(shortest posting list) per probe
///   * row-cover(sample items)               counting join over the
///     match-set postings, O(sum of the sample's posting lists)
///
/// `num_banks` shards the posting-list storage by item id (see
/// PostingBanks) — the server passes its event-loop shard count so each
/// shard's hot lists cluster in memory. Query results are identical for
/// any bank count.
///
/// All queries return group indices into `snapshot().groups`, most
/// interesting first, truncated to the caller's limit. The index is
/// immutable after construction and safe for concurrent readers.
class RuleGroupIndex {
 public:
  explicit RuleGroupIndex(RuleGroupSnapshot snapshot,
                          std::size_t num_banks = 1);

  const RuleGroupSnapshot& snapshot() const { return snap_; }
  std::size_t size() const { return snap_.groups.size(); }
  const RuleGroup& group(std::size_t i) const { return snap_.groups[i]; }
  std::size_t num_banks() const { return antecedent_postings_.num_banks(); }

  /// The `k` groups with the highest (confidence, support_pos) /
  /// (chi_square, support_pos), best first.
  std::vector<std::uint32_t> TopKByConfidence(std::size_t k) const;
  std::vector<std::uint32_t> TopKByChiSquare(std::size_t k) const;

  /// Groups whose upper-bound antecedent contains every item of `items`
  /// (sorted, duplicate-free), by descending confidence, at most `limit`.
  std::vector<std::uint32_t> AntecedentContains(const ItemVector& items,
                                                std::size_t limit) const;

  /// Groups matching a sample given as its sorted item vector: any lower
  /// bound (or, for groups without lower bounds, the upper bound) is a
  /// subset of `row_items` — the same match rule the IRG classifier
  /// applies. Descending confidence, at most `limit`.
  std::vector<std::uint32_t> RowCover(const ItemVector& row_items,
                                      std::size_t limit) const;

  /// Groups with support_pos >= min_support and confidence >=
  /// min_confidence, by descending confidence, at most `limit`.
  std::vector<std::uint32_t> Filter(std::size_t min_support,
                                    double min_confidence,
                                    std::size_t limit) const;

 private:
  /// True when every item of the sorted vector `sub` appears in the
  /// sorted vector `super`.
  static bool IsSubset(const ItemVector& sub, const ItemVector& super);

  RuleGroupSnapshot snap_;
  /// Group indices by descending (confidence, support_pos, index).
  std::vector<std::uint32_t> by_confidence_;
  /// Group indices by descending (chi_square, support_pos, index).
  std::vector<std::uint32_t> by_chi_;
  /// Rank of each group in by_confidence_ (for sorting query answers).
  std::vector<std::uint32_t> conf_rank_;
  /// item -> groups whose antecedent contains it (ascending group index),
  /// banked by item id across the server's event-loop shards.
  PostingBanks antecedent_postings_;
  /// Row-cover side: one match set per (group, lower bound) pair — or the
  /// antecedent when a group has no lower bounds. Sizes + owning group
  /// per match set, and item -> match-set ids postings for the counting
  /// join.
  std::vector<std::uint32_t> ms_group_;
  std::vector<std::uint32_t> ms_size_;
  PostingBanks ms_postings_;
  /// Groups with an empty match set (match every sample).
  std::vector<std::uint32_t> always_match_;
};

}  // namespace serve
}  // namespace farmer

#endif  // FARMER_SERVE_INDEX_H_
