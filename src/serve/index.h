#ifndef FARMER_SERVE_INDEX_H_
#define FARMER_SERVE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataset/types.h"
#include "serve/snapshot.h"

namespace farmer {
namespace serve {

/// In-memory query engine over a loaded snapshot.
///
/// Construction builds sorted projections (by confidence and by
/// chi-square) and a per-item posting-list inverted index, so each query
/// type an analyst or classifier issues is answered without scanning the
/// whole store:
///
///   * top-k by confidence / chi-square      O(k) off the projection
///   * filter by min-support + min-confidence  O(log n + answer) via
///     binary search on the confidence projection
///   * antecedent-contains(items)            posting-list intersection,
///     O(shortest posting list) per probe
///   * row-cover(sample items)               counting join over the
///     match-set postings, O(sum of the sample's posting lists)
///
/// All queries return group indices into `snapshot().groups`, most
/// interesting first, truncated to the caller's limit. The index is
/// immutable after construction and safe for concurrent readers.
class RuleGroupIndex {
 public:
  explicit RuleGroupIndex(RuleGroupSnapshot snapshot);

  const RuleGroupSnapshot& snapshot() const { return snap_; }
  std::size_t size() const { return snap_.groups.size(); }
  const RuleGroup& group(std::size_t i) const { return snap_.groups[i]; }

  /// The `k` groups with the highest (confidence, support_pos) /
  /// (chi_square, support_pos), best first.
  std::vector<std::uint32_t> TopKByConfidence(std::size_t k) const;
  std::vector<std::uint32_t> TopKByChiSquare(std::size_t k) const;

  /// Groups whose upper-bound antecedent contains every item of `items`
  /// (sorted, duplicate-free), by descending confidence, at most `limit`.
  std::vector<std::uint32_t> AntecedentContains(const ItemVector& items,
                                                std::size_t limit) const;

  /// Groups matching a sample given as its sorted item vector: any lower
  /// bound (or, for groups without lower bounds, the upper bound) is a
  /// subset of `row_items` — the same match rule the IRG classifier
  /// applies. Descending confidence, at most `limit`.
  std::vector<std::uint32_t> RowCover(const ItemVector& row_items,
                                      std::size_t limit) const;

  /// Groups with support_pos >= min_support and confidence >=
  /// min_confidence, by descending confidence, at most `limit`.
  std::vector<std::uint32_t> Filter(std::size_t min_support,
                                    double min_confidence,
                                    std::size_t limit) const;

 private:
  /// True when every item of the sorted vector `sub` appears in the
  /// sorted vector `super`.
  static bool IsSubset(const ItemVector& sub, const ItemVector& super);

  RuleGroupSnapshot snap_;
  /// Group indices by descending (confidence, support_pos, index).
  std::vector<std::uint32_t> by_confidence_;
  /// Group indices by descending (chi_square, support_pos, index).
  std::vector<std::uint32_t> by_chi_;
  /// Rank of each group in by_confidence_ (for sorting query answers).
  std::vector<std::uint32_t> conf_rank_;
  /// item -> groups whose antecedent contains it (ascending group index).
  std::vector<std::vector<std::uint32_t>> antecedent_postings_;
  /// Row-cover side: one match set per (group, lower bound) pair — or the
  /// antecedent when a group has no lower bounds. Sizes + owning group
  /// per match set, and item -> match-set ids postings for the counting
  /// join.
  std::vector<std::uint32_t> ms_group_;
  std::vector<std::uint32_t> ms_size_;
  std::vector<std::vector<std::uint32_t>> ms_postings_;
  /// Groups with an empty match set (match every sample).
  std::vector<std::uint32_t> always_match_;
};

}  // namespace serve
}  // namespace farmer

#endif  // FARMER_SERVE_INDEX_H_
