#ifndef FARMER_SERVE_SERVER_H_
#define FARMER_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/index.h"
#include "serve/protocol.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/timer.h"

namespace farmer {
namespace serve {

/// A concurrent rule-group query server built around epoll readiness:
/// one blocking acceptor thread plus `num_shards` event-loop threads.
/// Each admitted connection is handed to exactly one shard and never
/// migrates, so all per-connection state is thread-confined — no locks
/// on the hot path. Sockets are non-blocking; shards run level-triggered
/// epoll with a short tick for idle/stall scans.
///
/// Both wire framings of serve/protocol.h are spoken, auto-detected per
/// connection: line-delimited JSON, and FQP1 length-prefixed binary
/// frames. Requests pipeline in both: a shard parses every complete
/// request buffered on a readable socket (anchoring each request's
/// deadline at parse time), executes them in arrival order, and
/// coalesces all their responses into a single vectored send.
///
/// The serving snapshot is RCU-style hot-swappable: queries grab a
/// shared_ptr to an immutable (index, version) pair once per request; a
/// "reload" admin request — or ReloadFromFile(), which the CLI wires to
/// SIGHUP — validates a new snapshot off to the side and atomically
/// flips the pointer. In-flight requests keep their old snapshot alive;
/// new requests see the new version immediately; the response cache is
/// keyed by (version, canonical query) so a swap can never serve stale
/// payloads, and dead-version entries are reclaimed eagerly.
///
/// Admission control: at most `max_connections` connections at once.
/// Connections past the bound get an explicit overloaded error and are
/// closed — never silently dropped, never queued without bound.
/// Connections that complete no request within `idle_timeout_s` are
/// closed with an "idle_timeout" error; peers that stop reading while
/// responses are pending are dropped after `send_timeout_s` without
/// progress.
///
/// Shutdown() is graceful: the listener closes first, shards finish the
/// requests they have parsed, flush what the peers will accept, then
/// close their connections and exit.
///
/// Observability: when Options::metrics is set the server publishes
/// serve.* counters (requests, responses by kind, cache hits/misses,
/// overloaded rejections, reloads), gauges (active connections,
/// snapshot version, cache occupancy), per-op latency histograms
/// (labeled serve.op_latency_seconds{op=...}), per-shard event-loop
/// series (serve.shard_*{shard=...}), and a snapshot-swap timing
/// histogram. The registry is scrapeable live: the `metrics` op (both
/// framings) and a plain-HTTP `GET /metrics` (on the serve port, or on
/// the optional Options::metrics_port listener) render Prometheus text
/// exposition from any shard without stopping the world.
///
/// When Options::trace is set each request emits one op span plus
/// parse/cache-lookup/index/encode phase spans on its shard's lane,
/// keyed by req_id (build the session with num_shards + 1 lanes). When
/// Options::slow_query_ms > 0, requests slower than the threshold are
/// sampled into a structured JSON-lines slow-query log.
///
/// All telemetry is null-pointer-guarded: with metrics/trace unset and
/// slow_query_ms == 0 the hot path takes no clock reads, emits no
/// events, and responses are byte-identical to the uninstrumented
/// server.
class Server {
 public:
  struct Options {
    /// Listen address. Loopback by default: the protocol is unauthenti-
    /// cated, so exposing it wider is an explicit operator decision.
    std::string host = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    int port = 0;
    /// Event-loop shards. Each owns its connections outright.
    std::size_t num_shards = 4;
    /// Admission bound: connections accepted and not yet closed.
    std::size_t max_connections = 64;
    std::size_t cache_entries = 1024;
    std::size_t cache_bytes = std::size_t{16} << 20;
    /// Per-request deadline budget ceiling, seconds.
    double default_deadline_s = 1.0;
    /// Close connections that complete no request for this long (an
    /// "idle_timeout" error is sent first), freeing their admission
    /// slot: without it, max_connections silent clients lock the server
    /// against all new arrivals. Non-positive disables the timeout.
    double idle_timeout_s = 30.0;
    /// Drop connections whose pending responses make no send progress
    /// for this long (peer stopped reading; its TCP window is full).
    /// Non-positive disables the check.
    double send_timeout_s = 5.0;
    /// The snapshot file "reload" re-reads. Empty disables the reload
    /// op (it answers bad_request); ReloadFromFile() still works with
    /// an explicit path.
    std::string snapshot_path;
    /// Optional dedicated plain-HTTP metrics listener. Negative
    /// disables it; 0 binds an ephemeral port (read back via
    /// metrics_port()). Connections here bypass admission control so a
    /// scrape always succeeds, even mid-storm. The serve port answers
    /// `GET /metrics` too — this listener just isolates scrapes from
    /// the query admission budget.
    int metrics_port = -1;
    /// Requests slower than this (milliseconds, parse excluded) are
    /// logged as structured JSON lines through slow_query_log (or
    /// stderr when the sink is unset). Non-positive disables the log
    /// and its timing entirely.
    double slow_query_ms = 0.0;
    /// Sampling: log every Nth slow query per shard (1 = all).
    std::size_t slow_query_every = 1;
    /// Slow-query sink; called on shard threads, one complete JSON
    /// line per call (no trailing newline). Must be thread-safe.
    std::function<void(const std::string&)> slow_query_log;
    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceSession* trace = nullptr;
  };

  /// Takes ownership of the index (and through it the snapshot), which
  /// becomes snapshot version 1.
  Server(RuleGroupIndex index, const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the acceptor and shard threads.
  Status Start();

  /// The bound TCP port (valid after Start(); resolves port 0 binds).
  int port() const { return port_; }

  /// The bound metrics-listener port (valid after Start(); -1 when
  /// Options::metrics_port was negative).
  int metrics_port() const { return metrics_port_; }

  /// Graceful shutdown: stop accepting, finish parsed requests, flush,
  /// close connections, join the threads. Idempotent.
  void Shutdown();

  /// The currently served index. The shared_ptr keeps the snapshot
  /// alive across hot swaps for as long as the caller holds it.
  std::shared_ptr<const RuleGroupIndex> index() const;

  /// Version of the currently served snapshot (1 = the constructor's
  /// index; each successful swap increments it).
  std::uint64_t snapshot_version() const;

  /// Loads, validates, and atomically installs the snapshot at `path`.
  /// On any error the current snapshot keeps serving untouched.
  Status ReloadFromFile(const std::string& path);

  /// Atomically installs an already-built index as the next version.
  void InstallIndex(RuleGroupIndex index);

  ResponseCache& cache() { return cache_; }

  /// Connections rejected with an overloaded response so far.
  std::uint64_t overloaded_count() const {
    return overloaded_.load(std::memory_order_relaxed);
  }

 private:
  /// An immutable (index, version) pair — the unit of RCU publication.
  struct VersionedIndex {
    RuleGroupIndex index;
    std::uint64_t version;
  };

  /// One slot per QueryRequest::Op value.
  static constexpr std::size_t kOpCount = 9;

  struct Metrics {
    obs::Counter* requests = nullptr;
    obs::Counter* responses_ok = nullptr;
    obs::Counter* responses_error = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* overloaded = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* reloads = nullptr;
    obs::Counter* slow_queries = nullptr;
    obs::Gauge* active_connections = nullptr;
    obs::Gauge* snapshot_version = nullptr;
    /// Refreshed at scrape time (metrics op / GET /metrics) from the
    /// ResponseCache's own counters.
    obs::Gauge* cache_entries = nullptr;
    obs::Gauge* cache_bytes = nullptr;
    obs::Gauge* cache_evictions = nullptr;
    obs::Gauge* cache_hit_ratio = nullptr;
    obs::Histogram* latency = nullptr;
    /// serve.op_latency_seconds{op=...}, indexed by Op.
    std::array<obs::Histogram*, kOpCount> op_latency{};
    /// Snapshot-swap timing (load + index build + install).
    obs::Histogram* reload_seconds = nullptr;
  };

  /// Per-shard event-loop series (serve.shard_*{shard=...}); the
  /// pointer array lives in shard_metrics_, resolved once in the
  /// constructor, so shard threads update them lock-free.
  struct ShardMetrics {
    obs::Gauge* connections = nullptr;
    obs::Counter* wakeups = nullptr;
    obs::Histogram* loop_seconds = nullptr;
    obs::Gauge* pending_frames = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* write_stalls = nullptr;
  };

  /// One parsed (or failed-to-parse) request, deadline anchored at
  /// parse time so a queued pipelined request's budget burns while its
  /// predecessors execute.
  struct PendingRequest {
    Status parse = Status::Ok();
    QueryRequest request;
    Deadline deadline;
    bool binary = false;
    /// Request-scoped instrumentation, recorded at parse time only
    /// when tracing or the slow-query log is enabled: the trace id
    /// (bin_id, or a per-connection sequence for JSON requests) and
    /// the parse phase timing for the "serve.parse" span.
    std::uint64_t trace_id = 0;
    std::uint64_t parse_start_ns = 0;
    double parse_s = 0.0;
  };

  /// Per-connection state, owned by exactly one shard.
  struct Conn {
    enum class Mode { kDetect, kJson, kBinary, kHttp };

    int fd = -1;
    Mode mode = Mode::kDetect;
    std::string rbuf;
    /// Monotonic per-connection request counter; stands in for a
    /// req_id on JSON requests when tracing is on.
    std::uint64_t trace_seq = 0;
    /// Outgoing responses awaiting the socket: outq[out_head..] are
    /// unsent; out_off bytes of outq[out_head] are already gone.
    std::vector<std::string> outq;
    std::size_t out_head = 0;
    std::size_t out_off = 0;
    bool out_armed = false;   // EPOLLOUT currently requested.
    bool want_close = false;  // Close once outq drains.
    Deadline idle;
    Stopwatch stall;  // Runs while outq is non-empty without progress.
  };

  /// One event-loop thread: its epoll set, an eventfd to wake it, and
  /// a tiny locked inbox the acceptor pushes new fds through. Except
  /// for the inbox, everything here is confined to the shard thread —
  /// `checker` asserts that in debug builds.
  struct Shard {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    Mutex inbox_mutex;
    std::vector<int> inbox FARMER_GUARDED_BY(inbox_mutex);
    /// Shard-thread-confined: the connection map and through it every
    /// Conn's parser buffer and out-queue. Only the shard's event loop
    /// may touch them.
    ThreadChecker checker;
    std::unordered_map<int, Conn> conns;
    /// Written only by the owning shard (relaxed), read by any shard
    /// rendering the "stats" op — hence atomic, unlike conns.
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::size_t> owned{0};
    /// Shard-confined slow-query sampling counter.
    std::uint64_t slow_seen = 0;
    /// This shard's entry in shard_metrics_ (null when no registry).
    const ShardMetrics* sm = nullptr;
  };

  /// Per-request instrumentation context: trace lane + id and the
  /// phase timings the slow-query log reports. Allocated on the stack
  /// by ExecutePending only when tracing or the slow-query log is on;
  /// RunQuery takes it as a nullable pointer so the disabled path
  /// costs nothing.
  struct RequestScope {
    obs::TraceSession* trace = nullptr;
    std::size_t lane = 0;
    std::uint64_t req_id = 0;
    double cache_s = 0.0;
    double index_s = 0.0;
    double encode_s = 0.0;
  };

  /// The outcome of one executed request: the complete JSON response
  /// line plus the error class binary framing needs.
  struct QueryOutcome {
    bool error = false;
    bool cached = false;
    FrameStatus status = FrameStatus::kOk;
    /// Snapshot version the request ran against (slow-query log).
    std::uint64_t version = 0;
    std::string json;
  };

  std::shared_ptr<const VersionedIndex> Current() const;

  void AcceptLoop();
  /// Accepts one connection from `lfd` (poll said it is ready).
  /// Metrics-listener connections bypass the admission bound so a
  /// scrape succeeds even when query clients hold every slot. False =
  /// the listener is dead; AcceptLoop exits.
  bool AcceptOne(int lfd, bool admission_exempt, std::size_t* next_shard);
  void ShardLoop(std::size_t shard_id);
  /// Registers fds the acceptor queued on this shard.
  void AdoptInbox(Shard& shard);
  /// Drains the socket (until EAGAIN or a per-wake cap), parses and
  /// executes every complete request, flushes. False = close.
  bool HandleReadable(std::size_t shard_id, Shard& shard, Conn& conn);
  /// Parses every complete request in conn.rbuf (stamping deadlines),
  /// then executes them in arrival order, queueing responses.
  void ProcessBuffered(std::size_t shard_id, Shard& shard, Conn& conn);
  /// Answers a plain-HTTP scrape connection once its request headers
  /// are fully buffered (GET /metrics -> exposition; anything else ->
  /// a small error response), then closes.
  void HandleHttp(Conn& conn);
  /// Executes one parsed request and queues its response.
  void ExecutePending(std::size_t shard_id, Conn& conn, PendingRequest& p);
  /// Cache lookup + query engine for one valid request. `scope` is
  /// null unless tracing or the slow-query log wants phase timings.
  QueryOutcome RunQuery(const QueryRequest& request, const Deadline& deadline,
                        std::size_t shard_id, RequestScope* scope);
  /// The reload admin op (and SIGHUP): re-reads options_.snapshot_path.
  QueryOutcome RunReload(const QueryRequest& request);
  /// Refreshes the scrape-time cache gauges and renders the registry
  /// as Prometheus text ("" when no registry is attached).
  std::string RenderExposition();
  /// Collects the live serve-side values the "stats" op reports.
  ServeLiveStats GatherLiveStats() const;
  /// Renders and emits one slow-query log line.
  void EmitSlowQuery(std::size_t shard_id, const PendingRequest& p,
                     const RequestScope& scope, const QueryOutcome& out,
                     double total_ms);
  /// Queues response bytes (framed per conn.mode) on the connection.
  void Enqueue(Conn& conn, FrameStatus status, std::uint64_t bin_id,
               std::string json);
  /// Queues pre-framed bytes (HTTP responses) on the connection.
  void EnqueueRaw(Conn& conn, std::string bytes);
  /// Writes as much of the out-queue as the socket accepts (vectored).
  /// Arms/disarms EPOLLOUT to match. False = close the connection.
  bool FlushConn(Shard& shard, Conn& conn);
  /// Scans the shard's connections for idle and send-stall expiry.
  void TickTimeouts(Shard& shard);
  void CloseConn(Shard& shard, int fd);
  void SetWriteInterest(Shard& shard, Conn& conn, bool want);
  void WakeShard(Shard& shard);
  void PublishActiveGauge();

  static bool HasPending(const Conn& conn) {
    return conn.out_head < conn.outq.size();
  }

  Options options_;
  ResponseCache cache_;
  Metrics metrics_;
  /// Indexed by shard id; empty when no registry is attached.
  std::vector<ShardMetrics> shard_metrics_;

  /// RCU publication point. Readers load once per request; writers
  /// (serialized by swap_mutex_) build the next VersionedIndex off to
  /// the side and store it here.
  std::atomic<std::shared_ptr<const VersionedIndex>> current_;
  /// Serializes snapshot writers (reload/install); readers never take it.
  Mutex swap_mutex_;

  /// Makes Shutdown() idempotent under concurrent callers.
  Mutex shutdown_mutex_;
  int listen_fd_ = -1;
  int port_ = 0;
  /// Optional dedicated scrape listener (see Options::metrics_port).
  int metrics_listen_fd_ = -1;
  int metrics_port_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> slow_queries_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread accept_thread_;
};

}  // namespace serve
}  // namespace farmer

#endif  // FARMER_SERVE_SERVER_H_
