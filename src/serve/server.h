#ifndef FARMER_SERVE_SERVER_H_
#define FARMER_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/index.h"
#include "serve/protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace farmer {
namespace serve {

/// A concurrent rule-group query server: blocking accept loop on its own
/// thread, connection handlers on a work-stealing ThreadPool, speaking
/// the line-delimited JSON protocol of serve/protocol.h.
///
/// Admission control: at most `max_connections` connections may be
/// queued or active at once. Connections arriving past the bound get an
/// explicit {"ok":false,"error":"overloaded"} response and are closed —
/// never silently dropped, never queued without bound. Admitted
/// connections that complete no request within `idle_timeout_s` are
/// closed with an "idle_timeout" error, so idle or slow-loris clients
/// cannot hold admission slots indefinitely.
///
/// Responses to cacheable queries are served from an LRU ResponseCache
/// keyed by the canonicalized query; a hit skips the query engine and
/// the renderer entirely and flips the response's "cached" field.
///
/// Each request runs under a deadline budget (the request's
/// "deadline_ms" clamped to the server default); a budget that expires
/// before execution yields a "deadline_exceeded" error.
///
/// Shutdown() is graceful: the listener closes first, in-flight requests
/// run to completion, then connections close and the workers drain.
///
/// Observability: when Options::metrics is set the server publishes
/// serve.* counters (requests, responses by kind, cache hits/misses,
/// overloaded rejections), an active-connection gauge, and a per-query-
/// type latency histogram; when Options::trace is set each request emits
/// one "serve.request" span on its worker's lane (build the session with
/// num_workers + 1 lanes).
class Server {
 public:
  struct Options {
    /// Listen address. Loopback by default: the protocol is unauthenti-
    /// cated, so exposing it wider is an explicit operator decision.
    std::string host = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    int port = 0;
    std::size_t num_workers = 4;
    /// Admission bound: queued + active connections.
    std::size_t max_connections = 64;
    std::size_t cache_entries = 1024;
    std::size_t cache_bytes = std::size_t{16} << 20;
    /// Per-request deadline budget ceiling, seconds.
    double default_deadline_s = 1.0;
    /// Close connections that complete no request line for this long
    /// (an "idle_timeout" error is sent first), freeing their admission
    /// slot: without it, max_connections silent clients lock the server
    /// against all new arrivals. Non-positive disables the timeout.
    double idle_timeout_s = 30.0;
    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceSession* trace = nullptr;
  };

  /// Takes ownership of the index (and through it the snapshot).
  Server(RuleGroupIndex index, const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread + worker pool.
  Status Start();

  /// The bound TCP port (valid after Start(); resolves port 0 binds).
  int port() const { return port_; }

  /// Graceful shutdown: stop accepting, finish in-flight requests,
  /// close connections, drain the pool. Idempotent.
  void Shutdown();

  const RuleGroupIndex& index() const { return index_; }
  ResponseCache& cache() { return cache_; }

  /// Connections rejected with an overloaded response so far.
  std::uint64_t overloaded_count() const {
    return overloaded_.load(std::memory_order_relaxed);
  }

 private:
  struct Metrics {
    obs::Counter* requests = nullptr;
    obs::Counter* responses_ok = nullptr;
    obs::Counter* responses_error = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* overloaded = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Gauge* active_connections = nullptr;
    obs::Histogram* latency = nullptr;
  };

  void AcceptLoop();
  void HandleConnection(int fd, std::size_t worker_id);
  /// Processes one request line; returns the response line (no '\n').
  std::string ProcessRequest(const std::string& line,
                             std::size_t worker_id);
  /// Runs a parsed query against the index (cache miss path); returns
  /// the unfinished payload (see FinishResponse) or an error line.
  std::string ExecuteQuery(const QueryRequest& request,
                           const Deadline& deadline, bool* is_error);

  RuleGroupIndex index_;
  Options options_;
  ResponseCache cache_;
  Metrics metrics_;

  std::mutex shutdown_mutex_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
};

}  // namespace serve
}  // namespace farmer

#endif  // FARMER_SERVE_SERVER_H_
