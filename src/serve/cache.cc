#include "serve/cache.h"

namespace farmer {
namespace serve {

bool ResponseCache::Get(const std::string& key, std::string* value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->second;
  ++hits_;
  return true;
}

void ResponseCache::Put(const std::string& key, std::string value) {
  if (value.size() > max_bytes_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second->second.size();
    bytes_ += value.size();
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    bytes_ += value.size();
    lru_.emplace_front(key, std::move(value));
    map_.emplace(key, lru_.begin());
  }
  EvictLocked();
}

void ResponseCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

void ResponseCache::EvictLocked() {
  while (!lru_.empty() &&
         (map_.size() > max_entries_ || bytes_ > max_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.second.size();
    map_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t ResponseCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t ResponseCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResponseCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ResponseCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace serve
}  // namespace farmer
