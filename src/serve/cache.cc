#include "serve/cache.h"

namespace farmer {
namespace serve {

std::string ResponseCache::ComposeKey(std::uint64_t version,
                                      const std::string& key) {
  std::string out = std::to_string(version);
  out.push_back('\x1f');
  out += key;
  return out;
}

bool ResponseCache::Get(std::uint64_t version, const std::string& key,
                        std::string* value) {
  const std::string composite = ComposeKey(version, key);
  MutexLock lock(mutex_);
  auto it = map_.find(composite);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->payload;
  ++hits_;
  return true;
}

void ResponseCache::Put(std::uint64_t version, const std::string& key,
                        std::string value) {
  if (value.size() > max_bytes_) return;
  std::string composite = ComposeKey(version, key);
  MutexLock lock(mutex_);
  auto it = map_.find(composite);
  if (it != map_.end()) {
    bytes_ -= it->second->payload.size();
    bytes_ += value.size();
    it->second->payload = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    bytes_ += value.size();
    lru_.push_front(Entry{version, composite, std::move(value)});
    map_.emplace(std::move(composite), lru_.begin());
  }
  EvictLocked();
}

void ResponseCache::DropVersionsBelow(std::uint64_t version) {
  MutexLock lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->version < version) {
      bytes_ -= it->payload.size();
      map_.erase(it->map_key);
      it = lru_.erase(it);
      ++evictions_;
    } else {
      ++it;
    }
  }
}

void ResponseCache::Clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

void ResponseCache::EvictLocked() {
  while (!lru_.empty() &&
         (map_.size() > max_entries_ || bytes_ > max_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.payload.size();
    map_.erase(victim.map_key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResponseCache::size() const {
  MutexLock lock(mutex_);
  return map_.size();
}

std::size_t ResponseCache::bytes() const {
  MutexLock lock(mutex_);
  return bytes_;
}

std::uint64_t ResponseCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t ResponseCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

std::uint64_t ResponseCache::evictions() const {
  MutexLock lock(mutex_);
  return evictions_;
}

}  // namespace serve
}  // namespace farmer
