#ifndef FARMER_SERVE_SNAPSHOT_H_
#define FARMER_SERVE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/miner_options.h"
#include "core/rule.h"
#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/status.h"

namespace farmer {
namespace serve {

/// Versioned, checksummed binary container for a mined rule-group store.
///
/// A snapshot is the unit the serving layer loads: the groups themselves,
/// the mining parameters that produced them, and a fingerprint of the
/// dataset they were mined from, so a server (or classifier) can verify
/// it is pairing rules with the right data. The format is little-endian
/// fixed-width with a CRC32 per section; LoadSnapshot validates
/// strictly and returns InvalidArgument — never crashes, hangs, or
/// over-allocates — on truncated, corrupt, or version-mismatched input.
///
/// File layout (all integers little-endian):
///   header   "FSNP" | u32 version | u32 section_count | u32 crc32(bytes
///            0..11)
///   section  u32 tag | u64 payload_size | payload bytes | u32
///            crc32(payload)
/// Sections appear in tag order: META then GRPS. Unknown tags, duplicate
/// tags, or trailing bytes are rejected (strict parse, mirroring the
/// dataset parsers). See docs/SERVING.md for the full byte layout table.

/// The subset of MinerOptions a snapshot records: every knob that shapes
/// the mined store. Serving-side consumers read these to answer "what am
/// I serving?"; they are also replayed into classifier rebuilds.
struct SnapshotParams {
  ClassLabel consequent = 1;
  std::size_t min_support = 1;
  double min_confidence = 0.0;
  double min_chi_square = 0.0;
  std::size_t top_k = 0;
  bool mine_lower_bounds = true;
  bool report_all_rule_groups = false;

  /// Copies the recorded fields out of a full miner configuration.
  static SnapshotParams FromMinerOptions(const MinerOptions& options);

  friend bool operator==(const SnapshotParams& a,
                         const SnapshotParams& b) = default;
};

/// Identity of the dataset the store was mined from.
struct SnapshotFingerprint {
  std::uint64_t dataset_hash = 0;  // BinaryDataset::ContentHash().
  std::uint64_t num_rows = 0;
  std::uint64_t num_items = 0;

  static SnapshotFingerprint FromDataset(const BinaryDataset& dataset);

  friend bool operator==(const SnapshotFingerprint& a,
                         const SnapshotFingerprint& b) = default;
};

/// An in-memory snapshot: what SaveSnapshot writes and LoadSnapshot
/// reconstructs, losslessly.
struct RuleGroupSnapshot {
  std::vector<RuleGroup> groups;
  /// Width of every group's row bitset (the mined dataset's row count).
  std::size_t num_rows = 0;
  SnapshotParams params;
  SnapshotFingerprint fingerprint;
};

/// Hard caps enforced on load so hostile inputs cannot trigger unbounded
/// allocation: per-group bitsets allocate num_rows/8 bytes before any
/// row data is read, and RuleGroupIndex sizes its per-item posting-list
/// vectors from the fingerprint's num_items before reading any group, so
/// both counts must be bounded up front.
inline constexpr std::uint64_t kMaxSnapshotRows = std::uint64_t{1} << 22;
inline constexpr std::uint64_t kMaxSnapshotItems = std::uint64_t{1} << 22;
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Serializes `snapshot` into the binary format (the exact bytes
/// SaveSnapshot writes).
std::string SerializeSnapshot(const RuleGroupSnapshot& snapshot);

/// Writes `snapshot` to `path`. Fails with IoError when the file cannot
/// be created or fully written, InvalidArgument when the snapshot itself
/// is malformed (row bitset wider than num_rows, num_rows over the cap).
Status SaveSnapshot(const RuleGroupSnapshot& snapshot,
                    const std::string& path);

/// Parses a snapshot from an in-memory buffer. `name` labels error
/// messages (a path or "fuzz"). Strict: any deviation from the format —
/// bad magic, unsupported version, checksum mismatch, truncation,
/// out-of-range counts, trailing bytes — returns InvalidArgument and
/// leaves *out untouched.
Status LoadSnapshotFromBuffer(std::string_view data, const std::string& name,
                              RuleGroupSnapshot* out);

/// Reads and parses the snapshot at `path` (IoError when unreadable).
Status LoadSnapshot(const std::string& path, RuleGroupSnapshot* out);

/// Value-returning form of LoadSnapshot for callers that want the
/// snapshot and the error as one object.
StatusOr<RuleGroupSnapshot> LoadSnapshot(const std::string& path);

}  // namespace serve
}  // namespace farmer

#endif  // FARMER_SERVE_SNAPSHOT_H_
