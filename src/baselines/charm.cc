#include "baselines/charm.h"

#include <algorithm>
#include <unordered_map>

#include "util/bitset.h"

namespace farmer {

namespace {

// One IT-pair (itemset × tidset) of the CHARM search tree.
struct ItNode {
  ItemVector items;
  Bitset tids;
  std::size_t count = 0;
  bool erased = false;
};

ItemVector UnionItems(const ItemVector& a, const ItemVector& b) {
  ItemVector out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

class CharmImpl {
 public:
  CharmImpl(const BinaryDataset& dataset, const CharmOptions& options)
      : options_(options),
        min_support_(std::max<std::size_t>(1, options.min_support)),
        dataset_(dataset) {}

  CharmResult Run() {
    Stopwatch sw;
    // Initial IT-pairs: frequent single items, ordered by increasing
    // support (Zaki's recommended ordering).
    std::vector<std::size_t> item_count(dataset_.num_items(), 0);
    for (RowId r = 0; r < dataset_.num_rows(); ++r) {
      for (ItemId i : dataset_.row(r)) ++item_count[i];
    }
    std::vector<ItNode> roots;
    for (ItemId i = 0; i < dataset_.num_items(); ++i) {
      if (item_count[i] < min_support_) continue;
      ItNode node;
      node.items = {i};
      node.tids = Bitset(dataset_.num_rows());
      node.count = item_count[i];
      roots.push_back(std::move(node));
    }
    // Fill tidsets (single pass over the data).
    {
      std::unordered_map<ItemId, std::size_t> index;
      for (std::size_t k = 0; k < roots.size(); ++k) {
        index.emplace(roots[k].items[0], k);
      }
      for (RowId r = 0; r < dataset_.num_rows(); ++r) {
        for (ItemId i : dataset_.row(r)) {
          auto it = index.find(i);
          if (it != index.end()) roots[it->second].tids.Set(r);
        }
      }
    }
    std::stable_sort(roots.begin(), roots.end(),
                     [](const ItNode& a, const ItNode& b) {
                       return a.count < b.count;
                     });
    Extend(&roots);
    result_.seconds = sw.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  // True when the search must stop (deadline or result cap).
  bool ShouldStop() {
    if (result_.timed_out || result_.overflowed) return true;
    if (options_.deadline.Expired()) {
      result_.timed_out = true;
      return true;
    }
    if (options_.max_closed != 0 &&
        result_.closed.size() >= options_.max_closed) {
      result_.overflowed = true;
      return true;
    }
    return false;
  }

  // CHARM subsumption check: X is non-closed iff some already-stored
  // closed set has the same tidset and contains X.
  bool IsSubsumed(const ItemVector& items, const Bitset& tids) const {
    auto it = closed_by_hash_.find(tids.Hash());
    if (it == closed_by_hash_.end()) return false;
    for (std::size_t idx : it->second) {
      const ClosedItemset& c = result_.closed[idx];
      if (c.rows == tids &&
          std::includes(c.items.begin(), c.items.end(), items.begin(),
                        items.end())) {
        return true;
      }
    }
    return false;
  }

  void EmitIfClosed(ItemVector items, Bitset tids) {
    if (IsSubsumed(items, tids)) return;
    closed_by_hash_[tids.Hash()].push_back(result_.closed.size());
    result_.closed.push_back(ClosedItemset{std::move(items), std::move(tids)});
  }

  // CHARM-EXTEND over one level of sibling IT-pairs.
  void Extend(std::vector<ItNode>* nodes) {
    for (std::size_t i = 0; i < nodes->size(); ++i) {
      if ((*nodes)[i].erased) continue;
      if (ShouldStop()) return;
      ++result_.nodes_visited;

      std::vector<ItNode> children;
      // Extensions recorded before property-1/2 closure finishes; their
      // final itemsets are completed after the j-loop.
      for (std::size_t j = i + 1; j < nodes->size(); ++j) {
        ItNode& nj = (*nodes)[j];
        if (nj.erased) continue;
        ItNode& ni = (*nodes)[i];
        Bitset t = ni.tids & nj.tids;
        const std::size_t c = t.Count();
        if (c < min_support_) continue;
        const bool eq_i = (c == ni.count);
        const bool eq_j = (c == nj.count);
        if (eq_i && eq_j) {
          // Property 1: identical tidsets — merge j into i.
          ni.items = UnionItems(ni.items, nj.items);
          nj.erased = true;
        } else if (eq_i) {
          // Property 2: t(i) ⊂ t(j) — i always co-occurs with j.
          ni.items = UnionItems(ni.items, nj.items);
        } else if (eq_j) {
          // Property 3: t(i) ⊃ t(j) — j is replaced by the combination.
          ItNode child;
          child.items = nj.items;  // Completed with ni.items below.
          child.tids = std::move(t);
          child.count = c;
          children.push_back(std::move(child));
          nj.erased = true;
        } else {
          // Property 4: incomparable tidsets.
          ItNode child;
          child.items = nj.items;
          child.tids = std::move(t);
          child.count = c;
          children.push_back(std::move(child));
        }
      }

      ItNode& ni = (*nodes)[i];
      for (ItNode& child : children) {
        child.items = UnionItems(ni.items, child.items);
      }
      std::stable_sort(children.begin(), children.end(),
                       [](const ItNode& a, const ItNode& b) {
                         return a.count < b.count;
                       });
      EmitIfClosed(ni.items, ni.tids);
      if (!children.empty()) Extend(&children);
      if (ShouldStop()) return;
    }
  }

  const CharmOptions& options_;
  const std::size_t min_support_;
  const BinaryDataset& dataset_;
  CharmResult result_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> closed_by_hash_;
};

}  // namespace

CharmResult MineCharm(const BinaryDataset& dataset,
                      const CharmOptions& options) {
  CharmImpl impl(dataset, options);
  return impl.Run();
}

}  // namespace farmer
