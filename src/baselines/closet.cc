#include "baselines/closet.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "baselines/closed_filter.h"

namespace farmer {

namespace {

// A weighted transaction: items (global ids) and a multiplicity.
struct WeightedTrans {
  ItemVector items;
  std::size_t weight = 1;
};

struct FpNode {
  ItemId item = 0;
  std::size_t count = 0;
  FpNode* parent = nullptr;
  FpNode* chain = nullptr;  // next node carrying the same item
  std::vector<FpNode*> children;
};

// An FP-tree over weighted transactions; items below `min_support` are
// dropped and the rest ordered by descending support (ties by ascending
// item id) — the canonical FP-tree layout.
class FpTree {
 public:
  struct Header {
    ItemId item = 0;
    std::size_t count = 0;
    FpNode* head = nullptr;
  };

  FpTree(const std::vector<WeightedTrans>& transactions,
         std::size_t min_support) {
    std::unordered_map<ItemId, std::size_t> counts;
    for (const WeightedTrans& t : transactions) {
      for (ItemId i : t.items) counts[i] += t.weight;
    }
    for (const auto& [item, count] : counts) {
      if (count >= min_support) {
        headers_.push_back(Header{item, count, nullptr});
      }
    }
    std::sort(headers_.begin(), headers_.end(),
              [](const Header& a, const Header& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.item < b.item;
              });
    for (std::size_t h = 0; h < headers_.size(); ++h) {
      rank_.emplace(headers_[h].item, h);
    }
    for (const WeightedTrans& t : transactions) {
      Insert(t);
    }
  }

  const std::vector<Header>& headers() const { return headers_; }
  bool empty() const { return headers_.empty(); }

  /// When the tree is one downward chain, returns its nodes top-down;
  /// otherwise an empty vector.
  std::vector<const FpNode*> SinglePath() const {
    std::vector<const FpNode*> path;
    const FpNode* node = &root_;
    while (true) {
      if (node->children.empty()) return path;
      if (node->children.size() > 1) return {};
      node = node->children[0];
      path.push_back(node);
    }
  }

  /// The conditional pattern base of header `h`: one weighted transaction
  /// per tree path ending at an `h`-node (ancestor items, node count).
  std::vector<WeightedTrans> ConditionalBase(std::size_t h) const {
    std::vector<WeightedTrans> base;
    for (const FpNode* node = headers_[h].head; node != nullptr;
         node = node->chain) {
      WeightedTrans t;
      t.weight = node->count;
      for (const FpNode* up = node->parent; up != nullptr && up->parent;
           up = up->parent) {
        t.items.push_back(up->item);
      }
      if (!t.items.empty() || t.weight > 0) base.push_back(std::move(t));
    }
    return base;
  }

 private:
  void Insert(const WeightedTrans& t) {
    // Keep frequent items, ordered by tree rank.
    std::vector<std::size_t> ranks;
    ranks.reserve(t.items.size());
    for (ItemId i : t.items) {
      auto it = rank_.find(i);
      if (it != rank_.end()) ranks.push_back(it->second);
    }
    std::sort(ranks.begin(), ranks.end());
    FpNode* node = &root_;
    for (std::size_t rk : ranks) {
      const ItemId item = headers_[rk].item;
      FpNode* child = nullptr;
      for (FpNode* c : node->children) {
        if (c->item == item) {
          child = c;
          break;
        }
      }
      if (child == nullptr) {
        arena_.emplace_back();
        child = &arena_.back();
        child->item = item;
        child->parent = node;
        child->chain = headers_[rk].head;
        headers_[rk].head = child;
        node->children.push_back(child);
      }
      child->count += t.weight;
      node = child;
    }
  }

  std::deque<FpNode> arena_;
  FpNode root_;
  std::vector<Header> headers_;
  std::unordered_map<ItemId, std::size_t> rank_;
};

class ClosetImpl {
 public:
  ClosetImpl(const BinaryDataset& dataset, const ClosetOptions& options)
      : options_(options),
        min_support_(std::max<std::size_t>(1, options.min_support)),
        dataset_(dataset) {}

  ClosetResult Run() {
    Stopwatch sw;
    std::vector<WeightedTrans> transactions;
    transactions.reserve(dataset_.num_rows());
    for (RowId r = 0; r < dataset_.num_rows(); ++r) {
      if (dataset_.row(r).empty()) continue;
      transactions.push_back(WeightedTrans{dataset_.row(r), 1});
    }
    FpTree tree(transactions, min_support_);
    if (!tree.empty()) Mine(tree, {});
    FinalizeClosed();
    result_.seconds = sw.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  bool ShouldStop() {
    if (result_.timed_out || result_.overflowed) return true;
    if (options_.deadline.Expired()) {
      result_.timed_out = true;
      return true;
    }
    if (options_.max_closed != 0 &&
        result_.closed.size() >= options_.max_closed) {
      result_.overflowed = true;
      return true;
    }
    return false;
  }

  // True when an already-emitted itemset with the same support contains
  // `items` — the CLOSET+ sub-itemset subtree prune.
  bool Subsumed(const ItemVector& items, std::size_t support) const {
    auto it = by_support_.find(support);
    if (it == by_support_.end()) return false;
    for (std::size_t idx : it->second) {
      const FrequentClosed& c = result_.closed[idx];
      if (c.items.size() > items.size() &&
          std::includes(c.items.begin(), c.items.end(), items.begin(),
                        items.end())) {
        return true;
      }
    }
    return false;
  }

  void Emit(ItemVector items, std::size_t support) {
    std::sort(items.begin(), items.end());
    if (Subsumed(items, support)) return;
    by_support_[support].push_back(result_.closed.size());
    result_.closed.push_back(FrequentClosed{std::move(items), support});
  }

  void Mine(const FpTree& tree, const ItemVector& prefix) {
    if (ShouldStop()) return;
    ++result_.nodes_visited;

    // Single-path shortcut: the closed sets of a chain are its maximal
    // count-constant prefixes.
    const std::vector<const FpNode*> path = tree.SinglePath();
    if (!path.empty()) {
      ItemVector items = prefix;
      for (std::size_t j = 0; j < path.size(); ++j) {
        items.push_back(path[j]->item);
        const bool count_drops =
            j + 1 == path.size() || path[j + 1]->count < path[j]->count;
        if (count_drops) Emit(items, path[j]->count);
      }
      return;
    }

    // Bottom-up over the header (ascending frequency).
    const auto& headers = tree.headers();
    for (std::size_t h = headers.size(); h-- > 0;) {
      if (ShouldStop()) return;
      const std::size_t support = headers[h].count;
      std::vector<WeightedTrans> base = tree.ConditionalBase(h);

      // Item merging: conditional items with full support belong to the
      // closure of prefix ∪ {item} and join it immediately.
      std::unordered_map<ItemId, std::size_t> cond_counts;
      for (const WeightedTrans& t : base) {
        for (ItemId i : t.items) cond_counts[i] += t.weight;
      }
      ItemVector merged;
      for (const auto& [item, count] : cond_counts) {
        if (count == support) merged.push_back(item);
      }
      ItemVector new_prefix = prefix;
      new_prefix.push_back(headers[h].item);
      new_prefix.insert(new_prefix.end(), merged.begin(), merged.end());
      std::sort(new_prefix.begin(), new_prefix.end());
      if (Subsumed(new_prefix, support)) continue;  // Subtree prune.
      Emit(new_prefix, support);

      // Conditional tree without the merged (full-support) items.
      if (!merged.empty()) {
        std::sort(merged.begin(), merged.end());
        for (WeightedTrans& t : base) {
          ItemVector kept;
          kept.reserve(t.items.size());
          for (ItemId i : t.items) {
            if (!std::binary_search(merged.begin(), merged.end(), i)) {
              kept.push_back(i);
            }
          }
          t.items = std::move(kept);
        }
      }
      FpTree cond(base, min_support_);
      if (!cond.empty()) Mine(cond, new_prefix);
    }
  }

  // Removes itemsets subsumed by an equal-support superset (the global
  // closedness guarantee, independent of emission order).
  void FinalizeClosed() { RemoveNonClosed(&result_.closed); }

  const ClosetOptions& options_;
  const std::size_t min_support_;
  const BinaryDataset& dataset_;
  ClosetResult result_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_support_;
};

}  // namespace

ClosetResult MineCloset(const BinaryDataset& dataset,
                        const ClosetOptions& options) {
  ClosetImpl impl(dataset, options);
  return impl.Run();
}

}  // namespace farmer
