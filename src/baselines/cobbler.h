#ifndef FARMER_BASELINES_COBBLER_H_
#define FARMER_BASELINES_COBBLER_H_

#include <cstddef>
#include <vector>

#include "baselines/closet.h"  // FrequentClosed
#include "dataset/dataset.h"
#include "util/timer.h"

namespace farmer {

/// Enumeration strategy for COBBLER.
enum class CobblerMode {
  /// Estimate the remaining cost of both spaces at every node and pick the
  /// cheaper one (the algorithm's contribution).
  kDynamic,
  /// Force pure column (feature) enumeration — for tests and ablation.
  kColumnOnly,
  /// Force pure row enumeration — for tests and ablation.
  kRowOnly,
};

/// Options for COBBLER.
struct CobblerOptions {
  /// Minimum absolute support (rows). Must be >= 1.
  std::size_t min_support = 1;
  CobblerMode mode = CobblerMode::kDynamic;
  Deadline deadline;
  /// Stop (with `overflowed`) once this many candidates were emitted;
  /// 0 = unlimited.
  std::size_t max_closed = 0;
};

/// Result of a COBBLER run.
struct CobblerResult {
  std::vector<FrequentClosed> closed;
  std::size_t nodes_visited = 0;
  /// Contexts handed from column to row enumeration (dynamic mode).
  std::size_t switches_to_rows = 0;
  bool timed_out = false;
  bool overflowed = false;
  double seconds = 0.0;
};

/// COBBLER (Pan, Tung, Cong & Xu, SSDBM 2004 — the row-enumeration
/// family's follow-up for tables that are both tall and wide): frequent
/// closed itemset mining that *switches dynamically* between column
/// (feature) enumeration and row enumeration, per sub-context, based on an
/// estimated cost of the remaining subtree (the product-of-support-
/// fractions depth estimate from the authors' presentation).
///
/// Implementation notes: column contexts use CLOSET-style item merging;
/// a context handed to row enumeration is mined to completion with the
/// CARPENTER machinery (no switch back — switched contexts are small by
/// construction); global closedness is finalized with the shared
/// equal-support subsumption filter.
CobblerResult MineCobbler(const BinaryDataset& dataset,
                          const CobblerOptions& options);

}  // namespace farmer

#endif  // FARMER_BASELINES_COBBLER_H_
