#include "baselines/apriori.h"

#include <algorithm>
#include <map>

#include "util/bitset.h"

namespace farmer {

namespace {

// A frequent itemset of the current level with its tidset.
struct LevelEntry {
  ItemVector items;
  Bitset tids;
};

}  // namespace

AprioriResult MineApriori(const BinaryDataset& dataset,
                          const AprioriOptions& options) {
  AprioriResult result;
  Stopwatch sw;
  const std::size_t min_support =
      std::max<std::size_t>(1, options.min_support);
  const std::size_t n = dataset.num_rows();

  // Level 1: frequent single items with their tidsets.
  std::vector<Bitset> item_tids(dataset.num_items(), Bitset(n));
  for (RowId r = 0; r < n; ++r) {
    for (ItemId i : dataset.row(r)) item_tids[i].Set(r);
  }
  std::vector<LevelEntry> level;
  for (ItemId i = 0; i < dataset.num_items(); ++i) {
    if (item_tids[i].Count() >= min_support) {
      level.push_back(LevelEntry{{i}, item_tids[i]});
      result.frequent.push_back(
          FrequentClosed{{i}, item_tids[i].Count()});
    }
  }

  auto should_stop = [&]() {
    if (options.deadline.Expired()) {
      result.timed_out = true;
      return true;
    }
    if (options.max_itemsets != 0 &&
        result.frequent.size() >= options.max_itemsets) {
      result.overflowed = true;
      return true;
    }
    return false;
  };

  while (!level.empty() && !should_stop()) {
    // Join step: two frequent k-itemsets sharing their first k-1 items
    // yield a (k+1)-candidate. `level` is sorted lexicographically, so
    // joinable pairs are adjacent runs.
    std::vector<LevelEntry> next;
    for (std::size_t a = 0; a < level.size() && !should_stop(); ++a) {
      for (std::size_t b = a + 1; b < level.size(); ++b) {
        const ItemVector& ia = level[a].items;
        const ItemVector& ib = level[b].items;
        if (!std::equal(ia.begin(), ia.end() - 1, ib.begin())) break;
        ++result.candidates_generated;
        ItemVector candidate = ia;
        candidate.push_back(ib.back());

        // Prune step: every k-subset must be frequent. The two parents are
        // frequent by construction; check the remaining subsets.
        bool prunable = false;
        for (std::size_t drop = 0; drop + 2 < candidate.size(); ++drop) {
          ItemVector subset;
          subset.reserve(candidate.size() - 1);
          for (std::size_t p = 0; p < candidate.size(); ++p) {
            if (p != drop) subset.push_back(candidate[p]);
          }
          auto it = std::lower_bound(
              level.begin(), level.end(), subset,
              [](const LevelEntry& e, const ItemVector& v) {
                return e.items < v;
              });
          if (it == level.end() || it->items != subset) {
            prunable = true;
            break;
          }
        }
        if (prunable) continue;

        Bitset tids = level[a].tids & level[b].tids;
        const std::size_t support = tids.Count();
        if (support < min_support) continue;
        result.frequent.push_back(FrequentClosed{candidate, support});
        next.push_back(LevelEntry{std::move(candidate), std::move(tids)});
      }
    }
    level = std::move(next);
  }

  result.seconds = sw.ElapsedSeconds();
  return result;
}

}  // namespace farmer
