#ifndef FARMER_BASELINES_APRIORI_H_
#define FARMER_BASELINES_APRIORI_H_

#include <cstddef>
#include <vector>

#include "baselines/closet.h"  // FrequentClosed
#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/timer.h"

namespace farmer {

/// Options for the Apriori substrate.
struct AprioriOptions {
  /// Minimum absolute support (rows). Must be >= 1.
  std::size_t min_support = 1;
  Deadline deadline;
  /// Stop (with `overflowed`) once this many frequent itemsets exist;
  /// 0 = unlimited. Frequent-itemset counts explode on dense data.
  std::size_t max_itemsets = 0;
};

/// Result of an Apriori run.
struct AprioriResult {
  /// Every frequent itemset with its support (not only closed ones).
  std::vector<FrequentClosed> frequent;
  std::size_t candidates_generated = 0;
  bool timed_out = false;
  bool overflowed = false;
  double seconds = 0.0;
};

/// Classic level-wise Apriori (Agrawal & Srikant, VLDB 1994): generates
/// candidate k-itemsets by joining frequent (k-1)-itemsets, prunes by the
/// subset property, and counts supports with per-item tidsets. Provided as
/// the canonical column-enumeration substrate (e.g. for CBA-style rule
/// generation) and as a didactic contrast to the row-enumeration core.
AprioriResult MineApriori(const BinaryDataset& dataset,
                          const AprioriOptions& options);

}  // namespace farmer

#endif  // FARMER_BASELINES_APRIORI_H_
