#ifndef FARMER_BASELINES_COLUMNE_H_
#define FARMER_BASELINES_COLUMNE_H_

#include <cstddef>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace farmer {

/// One interesting rule found by ColumnE: an antecedent with its counts.
struct ColumnERule {
  ItemVector items;
  std::size_t support_pos = 0;  // |R(A ∪ C)|
  std::size_t support_neg = 0;  // |R(A ∪ ¬C)|
  double confidence = 0.0;
  double chi_square = 0.0;
};

/// Options for the ColumnE baseline.
struct ColumnEOptions {
  ClassLabel consequent = 1;
  std::size_t min_support = 1;   // On |R(A ∪ C)|.
  double min_confidence = 0.0;
  double min_chi_square = 0.0;
  Deadline deadline;
  /// Cap on candidate rules retained before the interestingness filter;
  /// exceeding it sets `overflowed`. 0 = unlimited.
  std::size_t max_rules = 0;
};

/// Result of a ColumnE run.
struct ColumnEResult {
  /// The interesting rules: constraint-satisfying rules whose confidence
  /// strictly exceeds that of every constraint-satisfying proper sub-rule.
  /// (One representative per interesting rule group — its minimal members —
  /// rather than FARMER's upper+lower bound description.)
  std::vector<ColumnERule> rules;
  std::size_t nodes_visited = 0;
  bool timed_out = false;
  bool overflowed = false;
  double seconds = 0.0;
};

/// ColumnE: the column-enumeration interesting-rule miner the paper
/// compares against (after Bayardo & Agrawal's Dense-Miner). Performs
/// depth-first set enumeration over *items* with tidset intersection,
/// pruning each head/tail group with support, confidence and chi-square
/// bounds, then filters the surviving rules for interestingness.
///
/// Its search space is 2^(number of items) — the paper's point is that this
/// explodes on microarray data where FARMER's 2^(number of rows) does not.
ColumnEResult MineColumnE(const BinaryDataset& dataset,
                          const ColumnEOptions& options);

}  // namespace farmer

#endif  // FARMER_BASELINES_COLUMNE_H_
