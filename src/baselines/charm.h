#ifndef FARMER_BASELINES_CHARM_H_
#define FARMER_BASELINES_CHARM_H_

#include <cstddef>
#include <vector>

#include "core/brute_force.h"  // ClosedItemset
#include "dataset/dataset.h"
#include "util/timer.h"

namespace farmer {

/// Options for the CHARM baseline.
struct CharmOptions {
  /// Minimum absolute support (rows) of a closed itemset. Must be >= 1.
  std::size_t min_support = 1;
  /// Cooperative time limit.
  Deadline deadline;
  /// Stop (with `overflowed` set) once this many closed itemsets have been
  /// found; 0 = unlimited. Protects bench runs on explosive datasets.
  std::size_t max_closed = 0;
};

/// Result of a CHARM run.
struct CharmResult {
  std::vector<ClosedItemset> closed;
  std::size_t nodes_visited = 0;
  bool timed_out = false;
  bool overflowed = false;
  double seconds = 0.0;
};

/// CHARM (Zaki & Hsiao, SDM 2002): mines all frequent closed itemsets by
/// column (itemset–tidset) enumeration. This is the paper's strongest
/// column-enumeration competitor; it is class-blind (labels ignored).
///
/// Implemented from the paper's description: diffset-free IT-tree search
/// with the four tidset properties for itemset merging and a
/// hash-on-tidset subsumption check for closedness.
CharmResult MineCharm(const BinaryDataset& dataset,
                      const CharmOptions& options);

}  // namespace farmer

#endif  // FARMER_BASELINES_CHARM_H_
