#include "baselines/cobbler.h"

#include <algorithm>
#include <unordered_map>

#include "baselines/closed_filter.h"
#include "core/carpenter.h"

namespace farmer {

namespace {

// A sub-problem: find the closed sets ⊇ prefix whose support (within
// `rows`, which equals the prefix's global row support set) meets minsup.
// Rows carry only the still-active items, as sorted global ids.
struct Context {
  ItemVector prefix;
  std::vector<ItemVector> rows;
};

class CobblerImpl {
 public:
  CobblerImpl(const BinaryDataset& dataset, const CobblerOptions& options)
      : options_(options),
        min_support_(std::max<std::size_t>(1, options.min_support)),
        dataset_(dataset) {}

  CobblerResult Run() {
    Stopwatch sw;
    Context root;
    root.rows.reserve(dataset_.num_rows());
    for (RowId r = 0; r < dataset_.num_rows(); ++r) {
      root.rows.push_back(dataset_.row(r));
    }
    MineContext(std::move(root));
    RemoveNonClosed(&result_.closed);
    result_.seconds = sw.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  bool ShouldStop() {
    if (result_.timed_out || result_.overflowed) return true;
    if (options_.deadline.Expired()) {
      result_.timed_out = true;
      return true;
    }
    if (options_.max_closed != 0 &&
        result_.closed.size() >= options_.max_closed) {
      result_.overflowed = true;
      return true;
    }
    return false;
  }

  // The presentation's depth estimate: with per-child "support fractions"
  // s_1 >= s_2 >= ... and budget B, child j's estimated path depth is the
  // largest t with B * s_j * ... * s_{j+t-1} >= floor; the context cost is
  // the sum over children.
  static double EstimateCost(std::vector<double> fractions, double budget,
                             double floor) {
    std::sort(fractions.begin(), fractions.end(), std::greater<>());
    double total = 0.0;
    for (std::size_t j = 0; j < fractions.size(); ++j) {
      double remaining = budget * fractions[j];
      std::size_t depth = 0;
      std::size_t k = j + 1;
      while (remaining >= floor) {
        ++depth;
        if (k >= fractions.size()) break;
        remaining *= fractions[k++];
      }
      total += static_cast<double>(depth);
    }
    return total;
  }

  // True when the dynamic estimator prefers row enumeration for this
  // context.
  bool PreferRows(const Context& ctx,
                  const std::unordered_map<ItemId, std::size_t>& counts) {
    if (options_.mode == CobblerMode::kRowOnly) return true;
    if (options_.mode == CobblerMode::kColumnOnly) return false;
    const double num_rows = static_cast<double>(ctx.rows.size());
    std::vector<double> col_fractions;
    col_fractions.reserve(counts.size());
    std::size_t active_items = 0;
    for (const auto& [item, count] : counts) {
      if (count < min_support_) continue;
      ++active_items;
      col_fractions.push_back(static_cast<double>(count) / num_rows);
    }
    if (active_items == 0) return false;
    const double col_cost =
        EstimateCost(std::move(col_fractions), num_rows,
                     static_cast<double>(min_support_));

    std::vector<double> row_fractions;
    row_fractions.reserve(ctx.rows.size());
    for (const ItemVector& row : ctx.rows) {
      row_fractions.push_back(static_cast<double>(row.size()) /
                              static_cast<double>(active_items));
    }
    // Row enumeration bottoms out when no common item remains (floor 1).
    const double row_cost = EstimateCost(
        std::move(row_fractions), static_cast<double>(active_items), 1.0);
    return row_cost < col_cost;
  }

  void MineContext(Context ctx) {
    if (ShouldStop()) return;
    ++result_.nodes_visited;
    if (ctx.rows.size() < min_support_) return;

    // Conditional item counts.
    std::unordered_map<ItemId, std::size_t> counts;
    for (const ItemVector& row : ctx.rows) {
      for (ItemId i : row) ++counts[i];
    }

    if (PreferRows(ctx, counts)) {
      ++result_.switches_to_rows;
      MineRowsToCompletion(ctx);
      return;
    }

    // One level of column enumeration, ascending conditional support.
    std::vector<std::pair<std::size_t, ItemId>> frequent;
    for (const auto& [item, count] : counts) {
      if (count >= min_support_) frequent.emplace_back(count, item);
    }
    std::sort(frequent.begin(), frequent.end());
    // Position of each item in the level order; children keep only items
    // strictly after their pivot.
    std::unordered_map<ItemId, std::size_t> level_pos;
    for (std::size_t p = 0; p < frequent.size(); ++p) {
      level_pos.emplace(frequent[p].second, p);
    }

    for (std::size_t p = 0; p < frequent.size(); ++p) {
      if (ShouldStop()) return;
      const ItemId pivot = frequent[p].second;
      const std::size_t support = frequent[p].first;

      // Child rows: context rows containing the pivot.
      std::vector<const ItemVector*> child_rows;
      child_rows.reserve(support);
      for (const ItemVector& row : ctx.rows) {
        if (std::binary_search(row.begin(), row.end(), pivot)) {
          child_rows.push_back(&row);
        }
      }

      // Item merging: items in every child row join the closure.
      std::unordered_map<ItemId, std::size_t> child_counts;
      for (const ItemVector* row : child_rows) {
        for (ItemId i : *row) ++child_counts[i];
      }
      ItemVector closure = ctx.prefix;
      for (const auto& [item, count] : child_counts) {
        if (count == child_rows.size()) closure.push_back(item);
      }
      std::sort(closure.begin(), closure.end());
      Emit(closure, child_rows.size());

      // Child context: items strictly after the pivot, minus the closure.
      Context child;
      child.prefix = closure;
      child.rows.reserve(child_rows.size());
      bool child_has_items = false;
      for (const ItemVector* row : child_rows) {
        ItemVector kept;
        for (ItemId i : *row) {
          auto pos = level_pos.find(i);
          if (pos == level_pos.end() || pos->second <= p) continue;
          if (std::binary_search(closure.begin(), closure.end(), i)) {
            continue;
          }
          kept.push_back(i);
        }
        child_has_items |= !kept.empty();
        child.rows.push_back(std::move(kept));
      }
      if (child_has_items) MineContext(std::move(child));
    }
  }

  // Hands a context to the CARPENTER row-enumeration machinery: remap the
  // active items to a dense local universe, mine, map back.
  void MineRowsToCompletion(const Context& ctx) {
    std::vector<ItemId> local_to_global;
    std::unordered_map<ItemId, ItemId> global_to_local;
    for (const ItemVector& row : ctx.rows) {
      for (ItemId i : row) {
        if (global_to_local.emplace(i, local_to_global.size()).second) {
          local_to_global.push_back(i);
        }
      }
    }
    BinaryDataset local(local_to_global.size());
    for (const ItemVector& row : ctx.rows) {
      ItemVector mapped;
      mapped.reserve(row.size());
      for (ItemId i : row) mapped.push_back(global_to_local.at(i));
      std::sort(mapped.begin(), mapped.end());
      local.AddRow(std::move(mapped), 0);
    }
    CarpenterOptions copts;
    copts.min_support = min_support_;
    copts.deadline = options_.deadline;
    if (options_.max_closed != 0) {
      copts.max_closed = options_.max_closed;
    }
    CarpenterResult sub = MineCarpenter(local, copts);
    result_.nodes_visited += sub.nodes_visited;
    if (sub.timed_out) result_.timed_out = true;
    for (ClosedItemset& c : sub.closed) {
      ItemVector items = ctx.prefix;
      items.reserve(items.size() + c.items.size());
      for (ItemId local_item : c.items) {
        items.push_back(local_to_global[local_item]);
      }
      std::sort(items.begin(), items.end());
      Emit(items, c.rows.Count());
    }
  }

  void Emit(ItemVector items, std::size_t support) {
    if (support < min_support_ || items.empty()) return;
    // Different branches re-derive the same closure; drop exact duplicates
    // immediately so the final subsumption filter stays small.
    std::uint64_t h = 1469598103934665603ull ^ support;
    for (ItemId i : items) {
      h ^= i;
      h *= 1099511628211ull;
    }
    auto& bucket = emitted_[h];
    for (std::size_t idx : bucket) {
      if (result_.closed[idx].support == support &&
          result_.closed[idx].items == items) {
        return;
      }
    }
    bucket.push_back(result_.closed.size());
    result_.closed.push_back(FrequentClosed{std::move(items), support});
  }

  const CobblerOptions& options_;
  const std::size_t min_support_;
  const BinaryDataset& dataset_;
  CobblerResult result_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> emitted_;
};

}  // namespace

CobblerResult MineCobbler(const BinaryDataset& dataset,
                          const CobblerOptions& options) {
  CobblerImpl impl(dataset, options);
  return impl.Run();
}

}  // namespace farmer
