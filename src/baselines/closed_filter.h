#ifndef FARMER_BASELINES_CLOSED_FILTER_H_
#define FARMER_BASELINES_CLOSED_FILTER_H_

#include <vector>

#include "baselines/closet.h"  // FrequentClosed

namespace farmer {

/// Removes duplicates and itemsets subsumed by an equal-support superset,
/// leaving exactly the closed sets among `candidates`. Order-preserving
/// for the survivors. Shared by the FP-growth style miners (CLOSET+,
/// COBBLER) whose traversal emits closure candidates rather than certified
/// closed sets.
void RemoveNonClosed(std::vector<FrequentClosed>* candidates);

}  // namespace farmer

#endif  // FARMER_BASELINES_CLOSED_FILTER_H_
