#include "baselines/columne.h"

#include <algorithm>

#include "core/measures.h"

namespace farmer {

namespace {

class ColumnEImpl {
 public:
  ColumnEImpl(const BinaryDataset& dataset, const ColumnEOptions& options)
      : options_(options),
        min_support_(std::max<std::size_t>(1, options.min_support)),
        dataset_(dataset),
        n_(dataset.num_rows()),
        m_(dataset.CountLabel(options.consequent)) {}

  ColumnEResult Run() {
    Stopwatch sw;
    // Per-item tidsets split by class.
    pos_.assign(dataset_.num_items(), Bitset(n_));
    neg_.assign(dataset_.num_items(), Bitset(n_));
    for (RowId r = 0; r < n_; ++r) {
      const bool is_pos = dataset_.label(r) == options_.consequent;
      for (ItemId i : dataset_.row(r)) {
        (is_pos ? pos_[i] : neg_[i]).Set(r);
      }
    }

    // Root tail: items whose positive support alone reaches min_support.
    std::vector<ItemId> tail;
    for (ItemId i = 0; i < dataset_.num_items(); ++i) {
      if (pos_[i].Count() >= min_support_) tail.push_back(i);
    }
    Bitset all_pos(n_), all_neg(n_);
    for (RowId r = 0; r < n_; ++r) {
      if (dataset_.label(r) == options_.consequent) {
        all_pos.Set(r);
      } else {
        all_neg.Set(r);
      }
    }
    ItemVector head;
    Expand(head, all_pos, all_neg, tail);
    FilterInteresting();
    result_.seconds = sw.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  bool ShouldStop() {
    if (result_.timed_out || result_.overflowed) return true;
    if (options_.deadline.Expired()) {
      result_.timed_out = true;
      return true;
    }
    if (options_.max_rules != 0 &&
        candidates_.size() >= options_.max_rules) {
      result_.overflowed = true;
      return true;
    }
    return false;
  }

  // Depth-first head/tail set enumeration. `pos`/`neg` are the class-split
  // tidsets of the head.
  void Expand(ItemVector& head, const Bitset& pos, const Bitset& neg,
              const std::vector<ItemId>& tail) {
    if (ShouldStop()) return;
    ++result_.nodes_visited;

    struct Child {
      ItemId item;
      Bitset pos;
      Bitset neg;
      std::size_t y;  // |R(head+i ∪ C)|
      std::size_t nn; // |R(head+i ∪ ¬C)|
    };
    std::vector<Child> children;
    for (ItemId i : tail) {
      Bitset cpos = pos & pos_[i];
      const std::size_t y = cpos.Count();
      if (y < min_support_) continue;  // Support is anti-monotone.
      Bitset cneg = neg & neg_[i];
      const std::size_t nn = cneg.Count();

      head.push_back(i);
      const std::size_t x = y + nn;
      const double conf = Confidence(y, x);
      const double chi = ChiSquare(x, y, n_, m_);
      if (conf >= options_.min_confidence &&
          (options_.min_chi_square <= 0.0 ||
           chi >= options_.min_chi_square)) {
        ColumnERule rule;
        rule.items = head;
        rule.support_pos = y;
        rule.support_neg = nn;
        rule.confidence = conf;
        rule.chi_square = chi;
        candidates_.push_back(std::move(rule));
      }
      head.pop_back();
      if (ShouldStop()) return;
      children.push_back(Child{i, std::move(cpos), std::move(cneg), y, nn});
    }

    // Recurse with Dense-Miner style group bounds: for each child, the
    // most specific descendant keeps only the negatives shared by the
    // child's entire remaining tail, which upper-bounds confidence and
    // (with the parallelogram corners) chi-square for the subtree.
    for (std::size_t k = 0; k < children.size(); ++k) {
      Child& c = children[k];
      std::vector<ItemId> child_tail;
      child_tail.reserve(children.size() - k - 1);
      Bitset neg_floor = c.neg;
      for (std::size_t j = k + 1; j < children.size(); ++j) {
        child_tail.push_back(children[j].item);
        neg_floor &= neg_[children[j].item];
      }
      if (child_tail.empty()) continue;
      const std::size_t neg_min = neg_floor.Count();

      if (options_.min_confidence > 0.0) {
        const double conf_ub =
            Confidence(c.y, c.y + neg_min);
        if (conf_ub < options_.min_confidence) continue;
      }
      if (options_.min_chi_square > 0.0 &&
          ChiSubtreeBound(c.y, c.nn, neg_min) < options_.min_chi_square) {
        continue;
      }

      head.push_back(c.item);
      Expand(head, c.pos, c.neg, child_tail);
      head.pop_back();
      if (ShouldStop()) return;
    }
  }

  // Upper bound of chi-square over rules in the subtree: the feasible
  // region {minsup <= y' <= y, neg_min <= n' <= nn} maps affinely to a
  // parallelogram in (x, y), so the convex statistic peaks at a corner.
  double ChiSubtreeBound(std::size_t y, std::size_t nn,
                         std::size_t neg_min) const {
    const std::size_t y_lo = std::min(min_support_, y);
    double best = 0.0;
    for (const std::size_t yy : {y_lo, y}) {
      for (const std::size_t nv : {neg_min, nn}) {
        best = std::max(best, ChiSquare(yy + nv, yy, n_, m_));
      }
    }
    return best;
  }

  // Keeps rules whose confidence strictly exceeds that of every
  // constraint-satisfying proper sub-rule.
  void FilterInteresting() {
    std::stable_sort(candidates_.begin(), candidates_.end(),
                     [](const ColumnERule& a, const ColumnERule& b) {
                       return a.items.size() < b.items.size();
                     });
    for (std::size_t a = 0; a < candidates_.size(); ++a) {
      const ColumnERule& rule = candidates_[a];
      bool interesting = true;
      for (std::size_t b = 0; b < a; ++b) {
        const ColumnERule& sub = candidates_[b];
        if (sub.items.size() >= rule.items.size()) break;
        if (sub.confidence >= rule.confidence &&
            std::includes(rule.items.begin(), rule.items.end(),
                          sub.items.begin(), sub.items.end())) {
          interesting = false;
          break;
        }
      }
      if (interesting) result_.rules.push_back(rule);
    }
  }

  const ColumnEOptions& options_;
  const std::size_t min_support_;
  const BinaryDataset& dataset_;
  const std::size_t n_;
  const std::size_t m_;
  std::vector<Bitset> pos_;
  std::vector<Bitset> neg_;
  std::vector<ColumnERule> candidates_;
  ColumnEResult result_;
};

}  // namespace

ColumnEResult MineColumnE(const BinaryDataset& dataset,
                          const ColumnEOptions& options) {
  ColumnEImpl impl(dataset, options);
  return impl.Run();
}

}  // namespace farmer
