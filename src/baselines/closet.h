#ifndef FARMER_BASELINES_CLOSET_H_
#define FARMER_BASELINES_CLOSET_H_

#include <cstddef>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/timer.h"

namespace farmer {

/// A frequent closed itemset reported with its support count (no tidset —
/// FP-growth style miners do not materialize one).
struct FrequentClosed {
  ItemVector items;
  std::size_t support = 0;
};

/// Options for the CLOSET+ baseline.
struct ClosetOptions {
  /// Minimum absolute support (rows). Must be >= 1.
  std::size_t min_support = 1;
  Deadline deadline;
  /// Stop (with `overflowed` set) once this many closed itemsets have been
  /// emitted; 0 = unlimited.
  std::size_t max_closed = 0;
};

/// Result of a CLOSET+ run.
struct ClosetResult {
  std::vector<FrequentClosed> closed;
  std::size_t nodes_visited = 0;
  bool timed_out = false;
  bool overflowed = false;
  double seconds = 0.0;
};

/// CLOSET+ (Wang, Han & Pei, KDD 2003): FP-tree based frequent closed
/// itemset mining, class-blind. Implements the FP-tree with bottom-up
/// (ascending-frequency) divide and conquer, item merging (all conditional
/// items with full support join the prefix immediately), the single-path
/// shortcut, and subset-based subtree pruning; closedness is finalized with
/// a support-bucketed subsumption filter.
ClosetResult MineCloset(const BinaryDataset& dataset,
                        const ClosetOptions& options);

}  // namespace farmer

#endif  // FARMER_BASELINES_CLOSET_H_
