#include "baselines/closed_filter.h"

#include <algorithm>
#include <unordered_map>

namespace farmer {

void RemoveNonClosed(std::vector<FrequentClosed>* candidates) {
  std::vector<FrequentClosed>& closed = *candidates;
  std::unordered_map<std::size_t, std::vector<std::size_t>> buckets;
  for (std::size_t idx = 0; idx < closed.size(); ++idx) {
    buckets[closed[idx].support].push_back(idx);
  }
  std::vector<bool> subsumed(closed.size(), false);
  for (auto& [support, bucket] : buckets) {
    std::sort(bucket.begin(), bucket.end(),
              [&closed](std::size_t a, std::size_t b) {
                return closed[a].items.size() > closed[b].items.size();
              });
    for (std::size_t a = 0; a < bucket.size(); ++a) {
      if (subsumed[bucket[a]]) continue;
      const ItemVector& big = closed[bucket[a]].items;
      for (std::size_t b = a + 1; b < bucket.size(); ++b) {
        if (subsumed[bucket[b]]) continue;
        const ItemVector& small = closed[bucket[b]].items;
        if (small.size() < big.size() &&
            std::includes(big.begin(), big.end(), small.begin(),
                          small.end())) {
          subsumed[bucket[b]] = true;
        } else if (small.size() == big.size() && small == big) {
          subsumed[bucket[b]] = true;  // Duplicate.
        }
      }
    }
  }
  std::vector<FrequentClosed> kept;
  kept.reserve(closed.size());
  for (std::size_t idx = 0; idx < closed.size(); ++idx) {
    if (!subsumed[idx]) kept.push_back(std::move(closed[idx]));
  }
  closed = std::move(kept);
}

}  // namespace farmer
