#include "farm/protocol.h"

#include <utility>

#include "util/crc32.h"
#include "util/wire.h"

namespace farmer {
namespace farm {

namespace {

using wire::PutF64;
using wire::PutString;
using wire::PutU32;
using wire::PutU64;
using wire::PutU8;

std::string Frame(FarmOp op, std::string_view payload) {
  std::string out;
  wire::AppendFrame(&out, static_cast<std::uint8_t>(op), payload);
  return out;
}

}  // namespace

std::string EncodeSegments(const std::vector<MineSegment>& segments) {
  std::string out;
  PutU32(&out, static_cast<std::uint32_t>(segments.size()));
  for (const MineSegment& seg : segments) {
    PutU32(&out, static_cast<std::uint32_t>(seg.id.size()));
    for (std::uint32_t part : seg.id) PutU32(&out, part);
    PutU32(&out, static_cast<std::uint32_t>(seg.groups.size()));
    for (const RuleGroup& g : seg.groups) {
      PutU32(&out, static_cast<std::uint32_t>(g.antecedent.size()));
      for (ItemId item : g.antecedent) PutU32(&out, item);
      PutU32(&out, static_cast<std::uint32_t>(g.rows.Count()));
      g.rows.ForEach([&out](std::size_t row) {
        PutU32(&out, static_cast<std::uint32_t>(row));
      });
      PutU64(&out, g.support_pos);
      PutU64(&out, g.support_neg);
      PutF64(&out, g.confidence);
      PutF64(&out, g.chi_square);
    }
  }
  return out;
}

Status DecodeSegments(std::string_view data, std::size_t num_rows,
                      std::vector<MineSegment>* out) {
  wire::Reader reader(data);
  std::vector<MineSegment> segments;
  std::uint32_t segment_count = 0;
  if (!reader.ReadU32(&segment_count)) {
    return Status::InvalidArgument("segments: truncated count");
  }
  // Every count below is re-bounded against the bytes actually left
  // (each counted element is >= 4 bytes), so a hostile count cannot
  // drive an allocation past the payload size.
  if (segment_count > reader.remaining() / 4) {
    return Status::InvalidArgument("segments: count exceeds payload");
  }
  segments.reserve(segment_count);
  for (std::uint32_t s = 0; s < segment_count; ++s) {
    MineSegment seg;
    std::uint32_t id_len = 0;
    if (!reader.ReadU32(&id_len) || id_len > reader.remaining() / 4) {
      return Status::InvalidArgument("segments: bad id length");
    }
    seg.id.reserve(id_len);
    for (std::uint32_t i = 0; i < id_len; ++i) {
      std::uint32_t part = 0;
      if (!reader.ReadU32(&part)) {
        return Status::InvalidArgument("segments: truncated id");
      }
      seg.id.push_back(part);
    }
    std::uint32_t group_count = 0;
    if (!reader.ReadU32(&group_count) ||
        group_count > reader.remaining() / 4) {
      return Status::InvalidArgument("segments: bad group count");
    }
    seg.groups.reserve(group_count);
    for (std::uint32_t gi = 0; gi < group_count; ++gi) {
      RuleGroup g;
      std::uint32_t ant_len = 0;
      if (!reader.ReadU32(&ant_len) || ant_len > reader.remaining() / 4) {
        return Status::InvalidArgument("segments: bad antecedent length");
      }
      g.antecedent.reserve(ant_len);
      for (std::uint32_t i = 0; i < ant_len; ++i) {
        std::uint32_t item = 0;
        if (!reader.ReadU32(&item)) {
          return Status::InvalidArgument("segments: truncated antecedent");
        }
        g.antecedent.push_back(item);
      }
      std::uint32_t row_count = 0;
      if (!reader.ReadU32(&row_count) ||
          row_count > reader.remaining() / 4) {
        return Status::InvalidArgument("segments: bad row count");
      }
      g.rows.Resize(num_rows);
      std::uint64_t prev = 0;
      bool have_prev = false;
      for (std::uint32_t i = 0; i < row_count; ++i) {
        std::uint32_t row = 0;
        if (!reader.ReadU32(&row)) {
          return Status::InvalidArgument("segments: truncated row set");
        }
        if (row >= num_rows) {
          return Status::InvalidArgument("segments: row id out of range");
        }
        if (have_prev && row <= prev) {
          return Status::InvalidArgument("segments: rows not ascending");
        }
        prev = row;
        have_prev = true;
        g.rows.Set(row);
      }
      if (!reader.ReadU64(&g.support_pos) ||
          !reader.ReadU64(&g.support_neg) ||
          !reader.ReadF64(&g.confidence) || !reader.ReadF64(&g.chi_square)) {
        return Status::InvalidArgument("segments: truncated group tail");
      }
      if (g.support_pos + g.support_neg != row_count) {
        return Status::InvalidArgument(
            "segments: support counts disagree with the row set");
      }
      seg.groups.push_back(std::move(g));
    }
    segments.push_back(std::move(seg));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("segments: trailing bytes");
  }
  *out = std::move(segments);
  return Status::Ok();
}

std::string EncodeHello(const HelloMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.version);
  PutU64(&payload, msg.fingerprint.dataset_hash);
  PutU64(&payload, msg.fingerprint.num_rows);
  PutU64(&payload, msg.fingerprint.num_items);
  PutU32(&payload, msg.params.consequent);
  PutU64(&payload, msg.params.min_support);
  PutF64(&payload, msg.params.min_confidence);
  PutF64(&payload, msg.params.min_chi_square);
  PutU64(&payload, msg.params.top_k);
  PutU8(&payload, msg.params.mine_lower_bounds ? 1 : 0);
  PutU8(&payload, msg.params.report_all_rule_groups ? 1 : 0);
  PutString(&payload, msg.simd_level);
  PutString(&payload, msg.worker_name);
  return Frame(FarmOp::kHello, payload);
}

Status DecodeHello(std::string_view payload, HelloMsg* out) {
  wire::Reader reader(payload);
  HelloMsg msg;
  std::uint32_t consequent = 0;
  std::uint64_t min_support = 0;
  std::uint64_t top_k = 0;
  std::uint8_t mine_lb = 0;
  std::uint8_t report_all = 0;
  std::string_view simd_level;
  std::string_view worker_name;
  if (!reader.ReadU32(&msg.version) ||
      !reader.ReadU64(&msg.fingerprint.dataset_hash) ||
      !reader.ReadU64(&msg.fingerprint.num_rows) ||
      !reader.ReadU64(&msg.fingerprint.num_items) ||
      !reader.ReadU32(&consequent) || !reader.ReadU64(&min_support) ||
      !reader.ReadF64(&msg.params.min_confidence) ||
      !reader.ReadF64(&msg.params.min_chi_square) ||
      !reader.ReadU64(&top_k) || !reader.ReadU8(&mine_lb) ||
      !reader.ReadU8(&report_all) || !reader.ReadString(&simd_level) ||
      !reader.ReadString(&worker_name) || !reader.AtEnd()) {
    return Status::InvalidArgument("hello: malformed payload");
  }
  if (consequent > 0xFF) {
    return Status::InvalidArgument("hello: consequent out of range");
  }
  msg.params.consequent = static_cast<ClassLabel>(consequent);
  msg.params.min_support = static_cast<std::size_t>(min_support);
  msg.params.top_k = static_cast<std::size_t>(top_k);
  msg.params.mine_lower_bounds = mine_lb != 0;
  msg.params.report_all_rule_groups = report_all != 0;
  msg.simd_level.assign(simd_level);
  msg.worker_name.assign(worker_name);
  *out = std::move(msg);
  return Status::Ok();
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  std::string payload;
  PutU8(&payload, msg.accepted ? 1 : 0);
  PutU32(&payload, msg.worker_id);
  PutString(&payload, msg.reason);
  return Frame(FarmOp::kHelloAck, payload);
}

Status DecodeHelloAck(std::string_view payload, HelloAckMsg* out) {
  wire::Reader reader(payload);
  HelloAckMsg msg;
  std::uint8_t accepted = 0;
  std::string_view reason;
  if (!reader.ReadU8(&accepted) || !reader.ReadU32(&msg.worker_id) ||
      !reader.ReadString(&reason) || !reader.AtEnd()) {
    return Status::InvalidArgument("hello_ack: malformed payload");
  }
  msg.accepted = accepted != 0;
  msg.reason.assign(reason);
  *out = std::move(msg);
  return Status::Ok();
}

std::string EncodeEmptyFrame(FarmOp op) { return Frame(op, {}); }

std::string EncodeLeaseGrant(const LeaseGrantMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.lease_id);
  PutU32(&payload, msg.root_row);
  return Frame(FarmOp::kLeaseGrant, payload);
}

Status DecodeLeaseGrant(std::string_view payload, LeaseGrantMsg* out) {
  wire::Reader reader(payload);
  LeaseGrantMsg msg;
  if (!reader.ReadU64(&msg.lease_id) || !reader.ReadU32(&msg.root_row) ||
      !reader.AtEnd()) {
    return Status::InvalidArgument("lease_grant: malformed payload");
  }
  *out = msg;
  return Status::Ok();
}

std::string EncodeHeartbeat(const HeartbeatMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.lease_id);
  PutU64(&payload, msg.nodes);
  PutF64(&payload, msg.nodes_per_sec);
  PutU32(&payload, msg.depth);
  PutU64(&payload, msg.groups);
  return Frame(FarmOp::kHeartbeat, payload);
}

Status DecodeHeartbeat(std::string_view payload, HeartbeatMsg* out) {
  wire::Reader reader(payload);
  HeartbeatMsg msg;
  if (!reader.ReadU64(&msg.lease_id) || !reader.ReadU64(&msg.nodes) ||
      !reader.ReadF64(&msg.nodes_per_sec) || !reader.ReadU32(&msg.depth) ||
      !reader.ReadU64(&msg.groups) || !reader.AtEnd()) {
    return Status::InvalidArgument("heartbeat: malformed payload");
  }
  *out = msg;
  return Status::Ok();
}

std::string EncodeResult(ResultMsg msg) {
  msg.crc = Crc32(msg.segments_wire.data(), msg.segments_wire.size());
  std::string payload;
  PutU64(&payload, msg.lease_id);
  PutU32(&payload, msg.root_row);
  PutU64(&payload, msg.nodes_visited);
  PutF64(&payload, msg.mine_seconds);
  PutU32(&payload, msg.crc);
  PutString(&payload, msg.segments_wire);
  return Frame(FarmOp::kResult, payload);
}

Status DecodeResult(std::string_view payload, ResultMsg* out) {
  wire::Reader reader(payload);
  ResultMsg msg;
  std::string_view segments_wire;
  if (!reader.ReadU64(&msg.lease_id) || !reader.ReadU32(&msg.root_row) ||
      !reader.ReadU64(&msg.nodes_visited) ||
      !reader.ReadF64(&msg.mine_seconds) || !reader.ReadU32(&msg.crc) ||
      !reader.ReadString(&segments_wire) || !reader.AtEnd()) {
    return Status::InvalidArgument("result: malformed payload");
  }
  if (Crc32(segments_wire.data(), segments_wire.size()) != msg.crc) {
    return Status::InvalidArgument("result: segment CRC mismatch");
  }
  msg.segments_wire.assign(segments_wire);
  *out = std::move(msg);
  return Status::Ok();
}

std::string EncodeResultAck(const ResultAckMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.lease_id);
  PutU8(&payload, msg.fresh ? 1 : 0);
  return Frame(FarmOp::kResultAck, payload);
}

Status DecodeResultAck(std::string_view payload, ResultAckMsg* out) {
  wire::Reader reader(payload);
  ResultAckMsg msg;
  std::uint8_t fresh = 0;
  if (!reader.ReadU64(&msg.lease_id) || !reader.ReadU8(&fresh) ||
      !reader.AtEnd()) {
    return Status::InvalidArgument("result_ack: malformed payload");
  }
  msg.fresh = fresh != 0;
  *out = msg;
  return Status::Ok();
}

std::string EncodeRevoke(const RevokeMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.lease_id);
  return Frame(FarmOp::kRevoke, payload);
}

Status DecodeRevoke(std::string_view payload, RevokeMsg* out) {
  wire::Reader reader(payload);
  RevokeMsg msg;
  if (!reader.ReadU64(&msg.lease_id) || !reader.AtEnd()) {
    return Status::InvalidArgument("revoke: malformed payload");
  }
  *out = msg;
  return Status::Ok();
}

FarmDetect DetectFarmProtocol(std::string_view prefix) {
  const std::string_view farm(kFarmPreamble, kFarmPreambleSize);
  const std::string_view http("GET ", 4);
  const bool farm_prefix =
      prefix.size() < farm.size()
          ? farm.substr(0, prefix.size()) == prefix
          : prefix.substr(0, farm.size()) == farm;
  const bool http_prefix =
      prefix.size() < http.size()
          ? http.substr(0, prefix.size()) == prefix
          : prefix.substr(0, http.size()) == http;
  if (prefix.size() >= kFarmPreambleSize) {
    if (farm_prefix) return FarmDetect::kFarm;
    if (http_prefix) return FarmDetect::kHttp;
    return FarmDetect::kUnknown;
  }
  return (farm_prefix || http_prefix) ? FarmDetect::kNeedMore
                                      : FarmDetect::kUnknown;
}

}  // namespace farm
}  // namespace farmer
