#ifndef FARMER_FARM_COORDINATOR_H_
#define FARMER_FARM_COORDINATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string_view>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/farmer.h"
#include "core/miner_options.h"
#include "dataset/dataset.h"
#include "farm/protocol.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/timer.h"

namespace farmer {
namespace farm {

/// The mining farm's coordinator: owns the dataset, decomposes the
/// search into per-root-subtree leases (FarmerMiner::PlanFarm), hands
/// them to worker processes over FMP1, and merges the uploads back into
/// a result bit-identical to a single-process MineFarmer() run.
///
/// Lease lifecycle:
///
///   pending --grant--> leased --result--> done
///               ^          |
///               +--revoke--+   (holder died or missed heartbeats)
///
/// A lease is revoked when its holder's connection closes or goes
/// silent past `heartbeat_timeout_s`; the row returns to the pending
/// set and the next hungry worker re-mines it. A revoked worker that
/// finishes anyway may still upload; the first upload of a row wins and
/// later ones are acked `fresh=0` and discarded — duplicates never
/// reach the merge, which keeps it deterministic.
///
/// Threading: Start() spawns one event-loop thread (epoll,
/// level-triggered, same discipline as the serve shards) that owns all
/// connection and lease state (ThreadChecker-confined). The caller
/// thread talks to it only through the mutex-guarded completion state
/// and stats. Finalize() runs on the caller thread after completion,
/// when the loop can no longer append segments.
class Coordinator {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = ephemeral; read the bound port with port().
    /// A worker silent for longer than this has its leases revoked.
    double heartbeat_timeout_s = 10.0;
    /// Optional metrics sink: farm.* counters/gauges, plus the "GET "
    /// scrape surface on the listener.
    obs::MetricsRegistry* metrics = nullptr;
  };

  struct Stats {
    std::uint64_t leases_granted = 0;
    std::uint64_t releases = 0;  // Leases revoked and re-queued.
    std::uint64_t results = 0;   // Fresh uploads accepted.
    std::uint64_t duplicate_results = 0;
    std::uint64_t workers_seen = 0;
    std::uint64_t workers_rejected = 0;
  };

  Coordinator(const BinaryDataset& dataset, const MinerOptions& options,
              const Options& coordinator_options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Plans the decomposition, opens the listener, starts the loop.
  Status Start();

  /// The bound listen port (valid after Start()).
  int port() const { return port_; }

  /// Blocks until every lease is merged. Returns false on timeout
  /// (non-positive = wait forever).
  bool WaitForCompletion(double timeout_seconds);

  /// True once every lease's result has been merged.
  bool complete() const;

  /// Merges all uploads plus the root's own segments and finishes the
  /// mine (top-k, MineLB, row-id remap). Call once, after
  /// WaitForCompletion() succeeded; stops the loop first so no upload
  /// can race the merge.
  FarmerResult Finalize();

  /// Stops the event loop and closes every connection. Idempotent.
  void Stop();

  Stats stats() const;

  /// Total and remaining lease counts (for progress displays).
  std::size_t lease_total() const;
  std::size_t lease_remaining() const;

 private:
  enum class ConnState : std::uint8_t {
    kPreamble,  // Waiting for "FMP1" / "GET ".
    kFarm,      // Frames.
    kHttp,      // Metrics scrape: flush the response, then close.
  };

  enum class LeaseStatus : std::uint8_t { kPending, kLeased, kDone };

  struct Conn {
    int fd = -1;
    ConnState state = ConnState::kPreamble;
    bool hello_done = false;
    bool close_after_flush = false;
    std::uint32_t worker_id = 0;
    std::string name;
    std::string rbuf;
    std::string wbuf;
    /// Rows this connection currently holds a lease on.
    std::set<std::uint32_t> held;
    /// Time since the last frame (any frame counts as liveness).
    Stopwatch since_frame;
    double last_nodes_per_sec = 0.0;
  };

  struct LeaseState {
    LeaseStatus status = LeaseStatus::kPending;
    std::uint64_t lease_id = 0;  // Current (latest) lease of the row.
    int holder_fd = -1;
  };

  // ---- Event-loop thread (all state below `checker_` is confined) ----
  void Loop();
  void AcceptReady();
  bool HandleReadable(Conn& conn);
  bool HandleFrame(Conn& conn, std::uint8_t opcode,
                   std::string_view payload);
  bool HandleHello(Conn& conn, std::string_view payload);
  bool HandleLeaseRequest(Conn& conn);
  bool HandleHeartbeat(Conn& conn, std::string_view payload);
  bool HandleResult(Conn& conn, std::string_view payload);
  /// Queues bytes on the connection and flushes what the socket takes.
  bool SendFrame(Conn& conn, std::string frame);
  bool FlushConn(Conn& conn);
  void CloseConn(int fd);
  /// Returns every lease `conn` holds to the pending set.
  void RevokeHeld(Conn& conn, bool notify);
  void TickTimeouts();
  void CheckCompletion();
  void PublishGauges();

  const BinaryDataset& dataset_;
  MinerOptions miner_options_;
  Options options_;
  internal::FarmerMiner miner_;
  serve::SnapshotFingerprint fingerprint_;
  serve::SnapshotParams params_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = 0;
  std::thread loop_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  /// Binds to the loop thread on its first iteration; every handler
  /// asserts it runs there.
  ThreadChecker checker_;
  // Loop-confined state (no locks: single owner thread).
  std::map<int, Conn> conns_;
  std::map<std::uint32_t, LeaseState> leases_;  // Keyed by root row.
  std::set<std::uint32_t> pending_;
  std::size_t done_count_ = 0;
  std::uint64_t next_lease_id_ = 1;
  std::uint32_t next_worker_id_ = 1;

  mutable Mutex mutex_;
  CondVar done_cv_;
  bool complete_ FARMER_GUARDED_BY(mutex_) = false;
  Stats stats_ FARMER_GUARDED_BY(mutex_);
  /// Accepted uploads, decoded. Appended by the loop, drained by
  /// Finalize() after the loop stopped.
  std::vector<MineSegment> collected_ FARMER_GUARDED_BY(mutex_);
  /// Aggregated worker-side stats (nodes, mine seconds).
  MinerStats worker_stats_ FARMER_GUARDED_BY(mutex_);

  struct Metrics {
    obs::Gauge* active_workers = nullptr;
    obs::Gauge* leases_pending = nullptr;
    obs::Gauge* leases_outstanding = nullptr;
    obs::Gauge* nodes_per_sec = nullptr;
    obs::Counter* leases_granted = nullptr;
    obs::Counter* releases = nullptr;
    obs::Counter* results = nullptr;
    obs::Counter* duplicate_results = nullptr;
    obs::Counter* workers_rejected = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
  } metrics_;

  std::size_t lease_total_ = 0;
};

}  // namespace farm
}  // namespace farmer

#endif  // FARMER_FARM_COORDINATOR_H_
