#include "farm/coordinator.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "obs/exposition.h"
#include "obs/progress.h"
#include "util/check.h"
#include "util/net.h"
#include "util/wire.h"

namespace farmer {
namespace farm {

namespace {

// epoll_wait timeout: how often the loop scans for heartbeat expiry and
// notices Stop() without an eventfd wake (same cadence as the serve
// shards).
constexpr int kTickMs = 50;
constexpr int kMaxEpollEvents = 64;
constexpr std::size_t kReadChunk = 65536;
// An HTTP scrape request larger than this is dropped.
constexpr std::size_t kMaxHttpRequest = 1 << 16;

}  // namespace

Coordinator::Coordinator(const BinaryDataset& dataset,
                         const MinerOptions& options,
                         const Options& coordinator_options)
    : dataset_(dataset),
      miner_options_(options),
      options_(coordinator_options),
      miner_(dataset, options),
      fingerprint_(serve::SnapshotFingerprint::FromDataset(dataset)),
      params_(serve::SnapshotParams::FromMinerOptions(options)) {
  if (options_.heartbeat_timeout_s <= 0) options_.heartbeat_timeout_s = 10.0;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    metrics_.active_workers = m->GetGauge("farm.active_workers");
    metrics_.leases_pending = m->GetGauge("farm.leases_pending");
    metrics_.leases_outstanding = m->GetGauge("farm.leases_outstanding");
    metrics_.nodes_per_sec = m->GetGauge("farm.nodes_per_sec");
    metrics_.leases_granted = m->GetCounter("farm.leases_granted");
    metrics_.releases = m->GetCounter("farm.leases_releases");
    metrics_.results = m->GetCounter("farm.results");
    metrics_.duplicate_results = m->GetCounter("farm.duplicate_results");
    metrics_.workers_rejected = m->GetCounter("farm.workers_rejected");
    metrics_.bytes_in = m->GetCounter("farm.bytes_in");
    metrics_.bytes_out = m->GetCounter("farm.bytes_out");
  }
}

Coordinator::~Coordinator() { Stop(); }

Status Coordinator::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("coordinator already started");
  }

  // Decompose before accepting anyone: the root visit is one node, and
  // doing it here keeps the loop thread free of mining work.
  const internal::FarmerMiner::FarmPlan& plan = miner_.PlanFarm();
  lease_total_ = plan.lease_rows.size();
  for (const std::uint32_t row : plan.lease_rows) {
    pending_.insert(row);
    leases_.emplace(row, LeaseState{});
  }
  if (lease_total_ == 0) {
    MutexLock lock(mutex_);
    complete_ = true;
  }

  const Status listening =
      net::OpenListener(options_.host, options_.port, &listen_fd_, &port_);
  if (!listening.ok()) return listening;
  if (!net::SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("fcntl(listener): " +
                           net::ErrnoString(errno));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const std::string err = net::ErrnoString(errno);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Status::IoError("epoll/eventfd: " + err);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  FARMER_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0)
      << "epoll_ctl(listener): " << net::ErrnoString(errno);
  ev.data.fd = wake_fd_;
  FARMER_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0)
      << "epoll_ctl(eventfd): " << net::ErrnoString(errno);

  started_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

bool Coordinator::WaitForCompletion(double timeout_seconds) {
  MutexLock lock(mutex_);
  if (timeout_seconds <= 0) {
    while (!complete_) done_cv_.Wait(mutex_);
    return true;
  }
  const Deadline deadline = Deadline::After(timeout_seconds);
  while (!complete_) {
    const double left = deadline.SecondsRemaining();
    if (left <= 0) return false;
    done_cv_.WaitForSeconds(mutex_, left);
  }
  return true;
}

bool Coordinator::complete() const {
  MutexLock lock(mutex_);
  return complete_;
}

Coordinator::Stats Coordinator::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t Coordinator::lease_total() const { return lease_total_; }

std::size_t Coordinator::lease_remaining() const {
  MutexLock lock(mutex_);
  return lease_total_ - static_cast<std::size_t>(stats_.results);
}

FarmerResult Coordinator::Finalize() {
  // Stop the loop first: afterwards nothing can append to collected_,
  // so the merge sees every accepted upload exactly once.
  Stop();
  std::vector<MineSegment> segments;
  MinerStats stats;
  {
    MutexLock lock(mutex_);
    FARMER_CHECK(complete_)
        << "Finalize() before every lease completed (call "
           "WaitForCompletion first)";
    segments = std::move(collected_);
    collected_.clear();
    stats = worker_stats_;
  }
  const internal::FarmerMiner::FarmPlan& plan = miner_.PlanFarm();
  for (const MineSegment& seg : plan.root_segments) segments.push_back(seg);
  stats.MergeFrom(plan.root_stats);
  return miner_.FinalizeFarm(std::move(segments), stats);
}

void Coordinator::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
  if (loop_thread_.joinable()) loop_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  started_.store(false, std::memory_order_release);
}

// farmer-lint: begin(event-loop)
// Everything between these markers runs on the coordinator's event-loop
// thread and must never block: the sockets are non-blocking, partial
// sends park in per-connection write buffers behind EPOLLOUT, and the
// merge (Finalize) happens on the caller thread after the loop exits.

void Coordinator::Loop() {
  FARMER_DCHECK_CALLED_ON(checker_);
  std::array<epoll_event, kMaxEpollEvents> events;
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events.data(), kMaxEpollEvents,
                               kTickMs);
    if (stopping_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      const int fd = ev.data.fd;
      if (fd == wake_fd_) {
        std::uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      bool alive = (ev.events & (EPOLLERR | EPOLLHUP)) == 0;
      if (alive && (ev.events & EPOLLOUT) != 0) alive = FlushConn(conn);
      if (alive && (ev.events & EPOLLIN) != 0) alive = HandleReadable(conn);
      if (!alive) CloseConn(fd);
    }
    TickTimeouts();
    PublishGauges();
  }
  // Drain: one best-effort flush per connection, then close.
  for (auto& entry : conns_) {
    FlushConn(entry.second);
    ::close(entry.second.fd);
  }
  conns_.clear();
}

void Coordinator::AcceptReady() {
  FARMER_DCHECK_CALLED_ON(checker_);
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient failure: next wake retries.
    if (!net::SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    net::SetTcpNoDelay(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conns_.emplace(fd, std::move(conn));
  }
}

bool Coordinator::HandleReadable(Conn& conn) {
  FARMER_DCHECK_CALLED_ON(checker_);
  char chunk[kReadChunk];
  bool peer_closed = false;
  while (true) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.rbuf.append(chunk, static_cast<std::size_t>(n));
      if (metrics_.bytes_in != nullptr) {
        metrics_.bytes_in->Add(static_cast<std::uint64_t>(n));
      }
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }

  if (conn.state == ConnState::kPreamble) {
    switch (DetectFarmProtocol(conn.rbuf)) {
      case FarmDetect::kNeedMore:
        return !peer_closed;
      case FarmDetect::kUnknown:
        return false;
      case FarmDetect::kFarm:
        conn.state = ConnState::kFarm;
        conn.rbuf.erase(0, kFarmPreambleSize);
        break;
      case FarmDetect::kHttp:
        conn.state = ConnState::kHttp;
        break;
    }
  }

  if (conn.state == ConnState::kHttp) {
    // Serve the scrape once the header block is complete; one response
    // per connection, then close (HTTP/1.0 style, like the serve
    // listener's scrape surface).
    std::size_t header_end = conn.rbuf.find("\r\n\r\n");
    if (header_end == std::string::npos) header_end = conn.rbuf.find("\n\n");
    if (header_end == std::string::npos) {
      if (conn.rbuf.size() > kMaxHttpRequest) return false;
      return !peer_closed;
    }
    const std::size_t line_end = conn.rbuf.find_first_of("\r\n");
    const std::string line = conn.rbuf.substr(0, line_end);
    conn.rbuf.clear();
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    std::string path = sp2 == std::string::npos
                           ? line.substr(sp1 + 1)
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    std::string response;
    if (path != "/metrics") {
      response = net::HttpResponse("404 Not Found", "text/plain",
                                   "try GET /metrics\n");
    } else if (options_.metrics == nullptr) {
      response = net::HttpResponse("503 Service Unavailable", "text/plain",
                                   "no metrics registry attached\n");
    } else {
      response =
          net::HttpResponse("200 OK", obs::kExpositionContentType,
                            obs::RenderPrometheus(
                                options_.metrics->Snapshot()));
    }
    conn.close_after_flush = true;
    return SendFrame(conn, std::move(response));
  }

  // Farm frames.
  while (true) {
    std::size_t consumed = 0;
    std::uint8_t opcode = 0;
    std::string_view payload;
    std::string error;
    const wire::FrameExtract got =
        wire::ExtractFrame(conn.rbuf, kMaxFarmFramePayload, &consumed,
                           &opcode, &payload, &error);
    if (got == wire::FrameExtract::kNeedMore) break;
    if (got == wire::FrameExtract::kError) return false;
    conn.since_frame.Restart();
    if (!HandleFrame(conn, opcode, payload)) return false;
    conn.rbuf.erase(0, consumed);
  }
  if (conn.close_after_flush && conn.wbuf.empty()) return false;
  return !peer_closed;
}

bool Coordinator::HandleFrame(Conn& conn, std::uint8_t opcode,
                              std::string_view payload) {
  FARMER_DCHECK_CALLED_ON(checker_);
  switch (static_cast<FarmOp>(opcode)) {
    case FarmOp::kHello:
      return HandleHello(conn, payload);
    case FarmOp::kLeaseRequest:
      return payload.empty() && HandleLeaseRequest(conn);
    case FarmOp::kHeartbeat:
      return HandleHeartbeat(conn, payload);
    case FarmOp::kResult:
      return HandleResult(conn, payload);
    default:
      // Coordinator-to-worker opcodes (or junk) from a worker: protocol
      // error, close.
      return false;
  }
}

bool Coordinator::HandleHello(Conn& conn, std::string_view payload) {
  FARMER_DCHECK_CALLED_ON(checker_);
  if (conn.hello_done) return false;
  HelloMsg hello;
  if (!DecodeHello(payload, &hello).ok()) return false;

  HelloAckMsg ack;
  if (hello.version != kFarmProtocolVersion) {
    ack.reason = "protocol version mismatch";
  } else if (!(hello.fingerprint == fingerprint_)) {
    ack.reason = "dataset fingerprint mismatch";
  } else if (!(hello.params == params_)) {
    ack.reason = "mining parameter mismatch";
  } else {
    ack.accepted = true;
    ack.worker_id = next_worker_id_++;
  }
  if (ack.accepted) {
    conn.hello_done = true;
    conn.worker_id = ack.worker_id;
    conn.name = std::move(hello.worker_name);
    MutexLock lock(mutex_);
    ++stats_.workers_seen;
  } else {
    conn.close_after_flush = true;
    if (metrics_.workers_rejected != nullptr) {
      metrics_.workers_rejected->Increment();
    }
    MutexLock lock(mutex_);
    ++stats_.workers_rejected;
  }
  return SendFrame(conn, EncodeHelloAck(ack));
}

bool Coordinator::HandleLeaseRequest(Conn& conn) {
  FARMER_DCHECK_CALLED_ON(checker_);
  if (!conn.hello_done) return false;
  if (!pending_.empty()) {
    const std::uint32_t row = *pending_.begin();
    pending_.erase(pending_.begin());
    LeaseState& lease = leases_[row];
    lease.status = LeaseStatus::kLeased;
    lease.lease_id = next_lease_id_++;
    lease.holder_fd = conn.fd;
    conn.held.insert(row);
    if (metrics_.leases_granted != nullptr) {
      metrics_.leases_granted->Increment();
    }
    {
      MutexLock lock(mutex_);
      ++stats_.leases_granted;
    }
    LeaseGrantMsg grant;
    grant.lease_id = lease.lease_id;
    grant.root_row = row;
    return SendFrame(conn, EncodeLeaseGrant(grant));
  }
  if (done_count_ == lease_total_) {
    return SendFrame(conn, EncodeEmptyFrame(FarmOp::kDone));
  }
  // Everything is leased out but not merged yet; the worker backs off
  // and asks again (it may yet inherit a re-leased row).
  return SendFrame(conn, EncodeEmptyFrame(FarmOp::kNoWork));
}

bool Coordinator::HandleHeartbeat(Conn& conn, std::string_view payload) {
  FARMER_DCHECK_CALLED_ON(checker_);
  if (!conn.hello_done) return false;
  HeartbeatMsg beat;
  if (!DecodeHeartbeat(payload, &beat).ok()) return false;
  conn.last_nodes_per_sec = beat.nodes_per_sec;
  return true;
}

bool Coordinator::HandleResult(Conn& conn, std::string_view payload) {
  FARMER_DCHECK_CALLED_ON(checker_);
  if (!conn.hello_done) return false;
  ResultMsg msg;
  if (!DecodeResult(payload, &msg).ok()) return false;
  auto it = leases_.find(msg.root_row);
  if (it == leases_.end()) return false;  // Never a lease: protocol error.
  conn.held.erase(msg.root_row);

  ResultAckMsg ack;
  ack.lease_id = msg.lease_id;
  if (it->second.status == LeaseStatus::kDone) {
    // A re-leased row finished twice (or a duplicate retransmit). First
    // upload won; this one is discarded before it can reach the merge.
    ack.fresh = false;
    if (metrics_.duplicate_results != nullptr) {
      metrics_.duplicate_results->Increment();
    }
    MutexLock lock(mutex_);
    ++stats_.duplicate_results;
    return SendFrame(conn, EncodeResultAck(ack));
  }

  std::vector<MineSegment> segments;
  if (!DecodeSegments(msg.segments_wire, dataset_.num_rows(), &segments)
           .ok()) {
    return false;
  }
  it->second.status = LeaseStatus::kDone;
  it->second.holder_fd = -1;
  pending_.erase(msg.root_row);
  ++done_count_;
  ack.fresh = true;
  if (metrics_.results != nullptr) metrics_.results->Increment();
  {
    MutexLock lock(mutex_);
    ++stats_.results;
    for (MineSegment& seg : segments) {
      collected_.push_back(std::move(seg));
    }
    worker_stats_.nodes_visited += msg.nodes_visited;
    if (msg.mine_seconds > worker_stats_.mine_seconds) {
      worker_stats_.mine_seconds = msg.mine_seconds;
    }
  }
  if (miner_options_.progress != nullptr) {
    miner_options_.progress->root_done.fetch_add(1,
                                                 std::memory_order_relaxed);
  }
  CheckCompletion();
  return SendFrame(conn, EncodeResultAck(ack));
}

bool Coordinator::SendFrame(Conn& conn, std::string frame) {
  FARMER_DCHECK_CALLED_ON(checker_);
  conn.wbuf.append(frame);
  return FlushConn(conn);
}

bool Coordinator::FlushConn(Conn& conn) {
  FARMER_DCHECK_CALLED_ON(checker_);
  std::size_t sent = 0;
  while (sent < conn.wbuf.size()) {
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + sent,
                             conn.wbuf.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      if (metrics_.bytes_out != nullptr) {
        metrics_.bytes_out->Add(static_cast<std::uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;
  }
  conn.wbuf.erase(0, sent);
  const bool want_out = !conn.wbuf.empty();
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? static_cast<std::uint32_t>(EPOLLOUT)
                                  : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  if (!want_out && conn.close_after_flush) return false;
  return true;
}

void Coordinator::CloseConn(int fd) {
  FARMER_DCHECK_CALLED_ON(checker_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  RevokeHeld(it->second, /*notify=*/false);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

void Coordinator::RevokeHeld(Conn& conn, bool notify) {
  FARMER_DCHECK_CALLED_ON(checker_);
  for (const std::uint32_t row : conn.held) {
    auto it = leases_.find(row);
    if (it == leases_.end() || it->second.status != LeaseStatus::kLeased) {
      continue;
    }
    // Book-keeping strictly before the notify: the wire is observable,
    // so a peer that saw the revoke frame must also see the release in
    // stats() and the row back in the pending set.
    const std::uint64_t stale_lease = it->second.lease_id;
    it->second.status = LeaseStatus::kPending;
    it->second.holder_fd = -1;
    pending_.insert(row);
    if (metrics_.releases != nullptr) metrics_.releases->Increment();
    {
      MutexLock lock(mutex_);
      ++stats_.releases;
    }
    if (notify) {
      RevokeMsg revoke;
      revoke.lease_id = stale_lease;
      SendFrame(conn, EncodeRevoke(revoke));
    }
  }
  conn.held.clear();
}

void Coordinator::TickTimeouts() {
  FARMER_DCHECK_CALLED_ON(checker_);
  for (auto& entry : conns_) {
    Conn& conn = entry.second;
    if (conn.held.empty()) continue;
    if (conn.since_frame.ElapsedSeconds() <= options_.heartbeat_timeout_s) {
      continue;
    }
    // Silent past the deadline: revoke (the worker, if alive, abandons
    // the lease on receipt) and hand the rows to the next requester.
    // The connection itself stays open — a stalled worker may recover
    // and take fresh leases.
    RevokeHeld(conn, /*notify=*/true);
  }
}

void Coordinator::CheckCompletion() {
  FARMER_DCHECK_CALLED_ON(checker_);
  if (done_count_ != lease_total_) return;
  // Tell every connected worker the farm is finished before the caller
  // tears the loop down; without the broadcast an idle worker only
  // sees its socket die and wastes its reconnect budget.
  for (auto& entry : conns_) {
    Conn& conn = entry.second;
    if (!conn.hello_done || conn.close_after_flush) continue;
    SendFrame(conn, EncodeEmptyFrame(FarmOp::kDone));
  }
  {
    MutexLock lock(mutex_);
    complete_ = true;
  }
  done_cv_.NotifyAll();
}

void Coordinator::PublishGauges() {
  FARMER_DCHECK_CALLED_ON(checker_);
  if (options_.metrics == nullptr) return;
  std::size_t workers = 0;
  double nodes_per_sec = 0.0;
  std::size_t outstanding = 0;
  for (const auto& entry : conns_) {
    const Conn& conn = entry.second;
    if (!conn.hello_done) continue;
    ++workers;
    nodes_per_sec += conn.last_nodes_per_sec;
    outstanding += conn.held.size();
  }
  metrics_.active_workers->Set(static_cast<double>(workers));
  metrics_.nodes_per_sec->Set(nodes_per_sec);
  metrics_.leases_outstanding->Set(static_cast<double>(outstanding));
  metrics_.leases_pending->Set(static_cast<double>(pending_.size()));
}

// farmer-lint: end(event-loop)

}  // namespace farm
}  // namespace farmer
