#ifndef FARMER_FARM_WORKER_H_
#define FARMER_FARM_WORKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "core/farmer.h"
#include "core/miner_options.h"
#include "dataset/dataset.h"
#include "farm/protocol.h"
#include "obs/progress.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace farmer {
namespace farm {

/// A farm worker: connects to the coordinator, mines leases until the
/// coordinator says the farm is done, and survives coordinator
/// restarts and transient network failures by reconnecting with
/// exponential backoff.
///
/// Threads per session: the main thread runs the lease state machine
/// (request -> mine -> upload -> ack); a reader thread drains incoming
/// frames so a kRevoke can cancel the current mine mid-subtree; a
/// heartbeat thread reports liveness and progress (from the miner's
/// live ProgressCounters) while a lease is being mined. A mined result
/// that could not be uploaded (connection died first) is kept and
/// re-uploaded on the next session — the coordinator dedups, so
/// retransmits are safe.
class Worker {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    std::string name;  // Free-form label sent in the hello.
    double heartbeat_interval_s = 1.0;
    double connect_timeout_s = 5.0;
    double backoff_initial_s = 0.2;
    double backoff_max_s = 5.0;
    /// Consecutive failed connect attempts before Run() gives up.
    int max_connect_attempts = 10;
    /// Wait between lease requests while the coordinator says kNoWork.
    double no_work_poll_s = 0.1;
  };

  Worker(const BinaryDataset& dataset, const MinerOptions& options,
         const Options& worker_options);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Mines until the coordinator reports completion. Ok on a clean
  /// kDone; InvalidArgument when the coordinator rejected the hello
  /// (mismatched dataset/params — retrying cannot help); IoError when
  /// the coordinator stayed unreachable past the backoff budget.
  Status Run();

  /// Asks Run() to stop after the current lease (used by tests).
  void RequestStop();

  std::uint64_t leases_completed() const {
    return leases_completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t leases_revoked() const {
    return leases_revoked_.load(std::memory_order_relaxed);
  }

 private:
  struct InFrame {
    std::uint8_t opcode = 0;
    std::string payload;
  };

  /// One connected session. Sets *done when the coordinator sent
  /// kDone, *rejected when it refused the hello.
  Status RunSession(int fd, bool* done, bool* rejected);
  Status Connect(int* out_fd);

  bool SendLocked(int fd, std::string_view bytes);

  MinerOptions miner_options_;
  Options options_;
  /// Live counters the heartbeat thread samples while mining. Must be
  /// declared before miner_ so the options pointer outlives it.
  obs::ProgressCounters counters_;
  internal::FarmerMiner miner_;
  serve::SnapshotFingerprint fingerprint_;
  serve::SnapshotParams params_;

  std::atomic<std::uint64_t> leases_completed_{0};
  std::atomic<std::uint64_t> leases_revoked_{0};
  std::atomic<bool> stop_requested_{false};

  /// Lease currently being mined (0 = none) and its cancel flag; the
  /// reader thread fires the flag when a kRevoke for this lease
  /// arrives.
  std::atomic<std::uint64_t> current_lease_{0};
  CancelFlag cancel_;

  /// Guards interleaved sends (heartbeat thread vs. state machine).
  Mutex send_mutex_;

  // Session-scoped inbox filled by the reader thread.
  Mutex inbox_mutex_;
  CondVar inbox_cv_;
  std::deque<InFrame> inbox_ FARMER_GUARDED_BY(inbox_mutex_);
  bool conn_dead_ FARMER_GUARDED_BY(inbox_mutex_) = false;

  // Heartbeat thread control.
  Mutex beat_mutex_;
  CondVar beat_cv_;
  bool session_over_ FARMER_GUARDED_BY(beat_mutex_) = false;

  /// A result mined but not yet acked; survives reconnects.
  bool have_pending_result_ = false;
  std::string pending_result_frame_;
};

}  // namespace farm
}  // namespace farmer

#endif  // FARMER_FARM_WORKER_H_
