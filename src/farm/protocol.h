#ifndef FARMER_FARM_PROTOCOL_H_
#define FARMER_FARM_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/farmer.h"
#include "core/miner_options.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace farmer {
namespace farm {

/// FMP1 — the farm mining protocol between one coordinator and its
/// worker processes. A connection opts in by sending the 4-byte
/// preamble "FMP1" immediately after connect; everything after it is
/// length-prefixed binary frames on the shared wire layout
/// (util/wire.h):
///
///   u32 length | u8 opcode | payload (length - 1 bytes)
///
/// Conversation (worker -> coordinator unless noted):
///
///   kHello          version, dataset fingerprint, mining params, SIMD
///                   level, worker name. The coordinator rejects a
///                   worker whose fingerprint or params differ from its
///                   own — a mismatched worker would upload segments
///                   from a different search space.
///   kHelloAck  (c)  accepted flag, assigned worker id, reject reason.
///   kLeaseRequest   ask for work.
///   kLeaseGrant (c) lease id + the root row of the subtree to mine.
///   kNoWork    (c)  every lease is out but not yet merged; retry soon.
///   kDone      (c)  the mine is complete; the worker should exit.
///   kHeartbeat      periodic liveness + progress (lease id, nodes,
///                   nodes/s, deepest frontier, live group count).
///   kResult         the mined lease: its segments (CRC-guarded) plus
///                   summary stats.
///   kResultAck (c)  fresh flag — 0 when the upload was a duplicate of
///                   an already-merged lease (re-leased after a timeout,
///                   then both workers finished). Duplicates are
///                   discarded deterministically: first upload wins.
///   kRevoke    (c)  the named lease was re-leased (its holder missed
///                   heartbeats); the worker must abandon it.
///
/// A connection whose first bytes are "GET " instead of the preamble is
/// a plain-HTTP Prometheus scrape of the coordinator's metrics, exactly
/// like the serve listener's third surface.
///
/// All integers little-endian; strings are u32-length-prefixed bytes;
/// f64 is the IEEE-754 bit pattern. Every decoder is strict: truncated
/// payloads, trailing bytes, out-of-range counts and CRC mismatches
/// come back InvalidArgument and never crash, hang, or over-allocate —
/// the property fuzz_farm_frame drives.

inline constexpr char kFarmPreamble[4] = {'F', 'M', 'P', '1'};
inline constexpr std::size_t kFarmPreambleSize = 4;
inline constexpr std::uint32_t kFarmProtocolVersion = 1;

/// Result uploads carry whole mined subtrees, so the farm cap is far
/// above the serve protocol's query-sized cap.
inline constexpr std::size_t kMaxFarmFramePayload = std::size_t{1} << 24;

enum class FarmOp : std::uint8_t {
  kHello = 0x01,
  kHelloAck = 0x02,
  kLeaseRequest = 0x03,
  kLeaseGrant = 0x04,
  kNoWork = 0x05,
  kDone = 0x06,
  kHeartbeat = 0x07,
  kResult = 0x08,
  kResultAck = 0x09,
  kRevoke = 0x0A,
};

struct HelloMsg {
  std::uint32_t version = kFarmProtocolVersion;
  serve::SnapshotFingerprint fingerprint;
  serve::SnapshotParams params;
  std::string simd_level;   // The worker's active kernel tier (info).
  std::string worker_name;  // Free-form label for logs/metrics.
};

struct HelloAckMsg {
  bool accepted = false;
  std::uint32_t worker_id = 0;
  std::string reason;  // Empty when accepted.
};

struct LeaseGrantMsg {
  std::uint64_t lease_id = 0;
  std::uint32_t root_row = 0;
};

struct HeartbeatMsg {
  std::uint64_t lease_id = 0;      // 0 = idle (between leases).
  std::uint64_t nodes = 0;         // Enumeration nodes so far (this lease).
  double nodes_per_sec = 0.0;
  std::uint32_t depth = 0;         // Deepest frontier so far.
  std::uint64_t groups = 0;        // Live (pre-merge) group count.
};

struct ResultMsg {
  std::uint64_t lease_id = 0;
  std::uint32_t root_row = 0;
  std::uint64_t nodes_visited = 0;
  double mine_seconds = 0.0;
  /// EncodeSegments() bytes. Guarded by `crc` (CRC32, util/crc32.h):
  /// DecodeResult refuses a payload whose segment bytes do not match.
  std::string segments_wire;
  std::uint32_t crc = 0;
};

struct ResultAckMsg {
  std::uint64_t lease_id = 0;
  bool fresh = false;  // False: duplicate upload, discarded.
};

struct RevokeMsg {
  std::uint64_t lease_id = 0;
};

// ---------------------------------------------------------------------
// Segment serialization (the body of a result upload).
//
//   u32 segment_count
//   per segment:  u32 id_len | id_len x u32
//                 u32 group_count
//   per group:    u32 antecedent_len | antecedent_len x u32 (item ids)
//                 u32 row_count | row_count x u32 (ascending row ids)
//                 u64 support_pos | u64 support_neg
//                 f64 confidence | f64 chi_square
//
// Lower bounds are never shipped: FinalizeFarm runs MineLB on the
// merged winners, so shipping per-group bounds would be wasted bytes.

std::string EncodeSegments(const std::vector<MineSegment>& segments);

/// Strict inverse of EncodeSegments. `num_rows` bounds every row id and
/// sizes the rebuilt row bitsets. Allocation is bounded by the payload
/// size before any reserve happens.
Status DecodeSegments(std::string_view data, std::size_t num_rows,
                      std::vector<MineSegment>* out);

// ---------------------------------------------------------------------
// Frame codecs. Encode* return a complete frame (length prefix
// included); Decode* take the payload (the bytes after the opcode) and
// are strict inverses.

std::string EncodeHello(const HelloMsg& msg);
Status DecodeHello(std::string_view payload, HelloMsg* out);

std::string EncodeHelloAck(const HelloAckMsg& msg);
Status DecodeHelloAck(std::string_view payload, HelloAckMsg* out);

/// kLeaseRequest, kNoWork and kDone carry no payload.
std::string EncodeEmptyFrame(FarmOp op);

std::string EncodeLeaseGrant(const LeaseGrantMsg& msg);
Status DecodeLeaseGrant(std::string_view payload, LeaseGrantMsg* out);

std::string EncodeHeartbeat(const HeartbeatMsg& msg);
Status DecodeHeartbeat(std::string_view payload, HeartbeatMsg* out);

/// EncodeResult stamps msg.crc from msg.segments_wire itself; the
/// caller only fills the other fields. DecodeResult re-checks it.
std::string EncodeResult(ResultMsg msg);
Status DecodeResult(std::string_view payload, ResultMsg* out);

std::string EncodeResultAck(const ResultAckMsg& msg);
Status DecodeResultAck(std::string_view payload, ResultAckMsg* out);

std::string EncodeRevoke(const RevokeMsg& msg);
Status DecodeRevoke(std::string_view payload, RevokeMsg* out);

// ---------------------------------------------------------------------
// Connection classification (mirrors serve::DetectProtocol).

enum class FarmDetect {
  kNeedMore,  // Prefix of a preamble so far; read more.
  kFarm,      // The full FMP1 preamble: frames follow it.
  kHttp,      // "GET ": a plain-HTTP metrics scrape.
  kUnknown,   // Neither — close the connection.
};

FarmDetect DetectFarmProtocol(std::string_view prefix);

}  // namespace farm
}  // namespace farmer

#endif  // FARMER_FARM_PROTOCOL_H_
