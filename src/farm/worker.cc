#include "farm/worker.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "util/net.h"
#include "util/simd/simd.h"
#include "util/timer.h"
#include "util/wire.h"

namespace farmer {
namespace farm {

namespace {

constexpr std::size_t kReadChunk = 65536;

MinerOptions WithProgress(MinerOptions options, obs::ProgressCounters* p) {
  options.progress = p;
  return options;
}

void SleepSeconds(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void ResetCounters(obs::ProgressCounters& c) {
  const auto relaxed = std::memory_order_relaxed;
  c.nodes.store(0, relaxed);
  c.groups.store(0, relaxed);
  c.pruned_backscan.store(0, relaxed);
  c.pruned_support.store(0, relaxed);
  c.pruned_confidence.store(0, relaxed);
  c.pruned_chi.store(0, relaxed);
  c.pruned_extension.store(0, relaxed);
  c.rows_absorbed.store(0, relaxed);
  c.tasks_spawned.store(0, relaxed);
  c.tasks_completed.store(0, relaxed);
  c.minelb_done.store(0, relaxed);
  c.max_depth.store(0, relaxed);
}

}  // namespace

Worker::Worker(const BinaryDataset& dataset, const MinerOptions& options,
               const Options& worker_options)
    : miner_options_(WithProgress(options, &counters_)),
      options_(worker_options),
      miner_(dataset, miner_options_),
      fingerprint_(serve::SnapshotFingerprint::FromDataset(dataset)),
      params_(serve::SnapshotParams::FromMinerOptions(options)) {}

void Worker::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
}

bool Worker::SendLocked(int fd, std::string_view bytes) {
  MutexLock lock(send_mutex_);
  return net::SendAll(fd, bytes);
}

Status Worker::Run() {
  int attempts = 0;
  double backoff = options_.backoff_initial_s;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    int fd = -1;
    const Status connected = net::ConnectToHost(
        options_.host, options_.port, options_.connect_timeout_s, &fd);
    if (!connected.ok()) {
      if (connected.IsInvalidArgument()) return connected;
      ++attempts;
      if (attempts >= options_.max_connect_attempts) {
        return Status::IoError("coordinator unreachable after " +
                               std::to_string(attempts) +
                               " attempts: " + connected.ToString());
      }
      // Exponential backoff with a cap: transient refusals (coordinator
      // restarting, listen backlog) deserve patience, not a hot loop.
      SleepSeconds(backoff);
      backoff = std::min(backoff * 2, options_.backoff_max_s);
      continue;
    }
    attempts = 0;
    backoff = options_.backoff_initial_s;

    bool done = false;
    bool rejected = false;
    const Status session = RunSession(fd, &done, &rejected);
    ::close(fd);
    if (rejected) return session;  // Mismatch: retrying cannot help.
    if (done) return Status::Ok();
    if (stop_requested_.load(std::memory_order_acquire)) {
      return Status::Ok();
    }
    // The connection died mid-session (session carries the detail); any
    // mined-but-unacked result is kept in pending_result_frame_ and
    // re-uploaded after the reconnect.
    SleepSeconds(backoff);
    backoff = std::min(backoff * 2, options_.backoff_max_s);
  }
  return Status::Ok();
}

Status Worker::RunSession(int fd, bool* done, bool* rejected) {
  net::SetTcpNoDelay(fd);
  {
    MutexLock lock(inbox_mutex_);
    inbox_.clear();
    conn_dead_ = false;
  }
  {
    MutexLock lock(beat_mutex_);
    session_over_ = false;
  }

  // Preamble + hello, before any helper thread exists (early-return on
  // failure needs no teardown).
  HelloMsg hello;
  hello.fingerprint = fingerprint_;
  hello.params = params_;
  hello.simd_level = simd::LevelName(simd::ActiveLevel());
  hello.worker_name = options_.name;
  std::string opening(kFarmPreamble, kFarmPreambleSize);
  opening += EncodeHello(hello);
  if (!SendLocked(fd, opening)) {
    return Status::IoError("hello send failed: " +
                           net::ErrnoString(errno));
  }

  // Reader: drains frames so a kRevoke can cancel the current mine
  // mid-subtree; everything else lands in the inbox for the state
  // machine below.
  std::thread reader([this, fd] {
    std::string buf;
    char chunk[kReadChunk];
    bool alive = true;
    while (alive) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      while (alive) {
        std::size_t consumed = 0;
        std::uint8_t opcode = 0;
        std::string_view payload;
        std::string error;
        const wire::FrameExtract got =
            wire::ExtractFrame(buf, kMaxFarmFramePayload, &consumed,
                               &opcode, &payload, &error);
        if (got == wire::FrameExtract::kNeedMore) break;
        if (got == wire::FrameExtract::kError) {
          alive = false;
          break;
        }
        if (static_cast<FarmOp>(opcode) == FarmOp::kRevoke) {
          RevokeMsg revoke;
          if (DecodeRevoke(payload, &revoke).ok() && revoke.lease_id != 0 &&
              revoke.lease_id ==
                  current_lease_.load(std::memory_order_acquire)) {
            leases_revoked_.fetch_add(1, std::memory_order_relaxed);
            cancel_.Cancel();
          }
        } else {
          MutexLock lock(inbox_mutex_);
          inbox_.push_back(InFrame{opcode, std::string(payload)});
          inbox_cv_.NotifyOne();
        }
        buf.erase(0, consumed);
      }
    }
    {
      MutexLock lock(inbox_mutex_);
      conn_dead_ = true;
    }
    inbox_cv_.NotifyAll();
  });

  // Heartbeat: while a lease is active, report nodes + nodes/s + depth
  // from the miner's live progress counters.
  std::thread beater([this, fd] {
    std::uint64_t last_nodes = 0;
    Stopwatch since;
    MutexLock lock(beat_mutex_);
    while (!session_over_) {
      beat_cv_.WaitForSeconds(beat_mutex_, options_.heartbeat_interval_s);
      if (session_over_) break;
      const std::uint64_t lease =
          current_lease_.load(std::memory_order_acquire);
      if (lease == 0) {
        last_nodes = counters_.nodes.load(std::memory_order_relaxed);
        since.Restart();
        continue;
      }
      HeartbeatMsg beat;
      beat.lease_id = lease;
      beat.nodes = counters_.nodes.load(std::memory_order_relaxed);
      const double dt = since.ElapsedSeconds();
      const std::uint64_t delta =
          beat.nodes >= last_nodes ? beat.nodes - last_nodes : beat.nodes;
      beat.nodes_per_sec =
          dt > 0 ? static_cast<double>(delta) / dt : 0.0;
      beat.depth = static_cast<std::uint32_t>(
          counters_.max_depth.load(std::memory_order_relaxed));
      beat.groups = counters_.groups.load(std::memory_order_relaxed);
      last_nodes = beat.nodes;
      since.Restart();
      // Failure is not fatal here: the reader observes the dead socket
      // and wakes the state machine.
      SendLocked(fd, EncodeHeartbeat(beat));
    }
  });

  const auto wait_frame = [this](InFrame* out) {
    MutexLock lock(inbox_mutex_);
    while (inbox_.empty() && !conn_dead_) inbox_cv_.Wait(inbox_mutex_);
    if (inbox_.empty()) return false;
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  };

  const Status result = [&]() -> Status {
    InFrame frame;
    if (!wait_frame(&frame)) {
      return Status::IoError("connection closed before hello ack");
    }
    if (static_cast<FarmOp>(frame.opcode) != FarmOp::kHelloAck) {
      return Status::IoError("unexpected frame before hello ack");
    }
    HelloAckMsg ack;
    if (!DecodeHelloAck(frame.payload, &ack).ok()) {
      return Status::IoError("malformed hello ack");
    }
    if (!ack.accepted) {
      *rejected = true;
      return Status::InvalidArgument("coordinator rejected worker: " +
                                     ack.reason);
    }

    while (!stop_requested_.load(std::memory_order_acquire)) {
      // Send failures are not handled here: the reader sees the dead
      // socket and wait_frame reports it — and a broadcast kDone that
      // raced the failed send is still drained from the inbox first.
      if (have_pending_result_) {
        SendLocked(fd, pending_result_frame_);
        if (!wait_frame(&frame)) {
          return Status::IoError("connection lost awaiting result ack");
        }
        if (static_cast<FarmOp>(frame.opcode) == FarmOp::kDone) {
          // Completion implies every row is merged, including this one
          // (another worker got there first); drop the retransmit.
          *done = true;
          return Status::Ok();
        }
        if (static_cast<FarmOp>(frame.opcode) != FarmOp::kResultAck) {
          return Status::IoError("unexpected frame awaiting result ack");
        }
        ResultAckMsg rack;
        if (!DecodeResultAck(frame.payload, &rack).ok()) {
          return Status::IoError("malformed result ack");
        }
        // Duplicate (fresh == false) still completes the lease from
        // this worker's point of view: the coordinator has the row.
        have_pending_result_ = false;
        pending_result_frame_.clear();
        leases_completed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }

      SendLocked(fd, EncodeEmptyFrame(FarmOp::kLeaseRequest));
      if (!wait_frame(&frame)) {
        return Status::IoError("connection lost awaiting lease");
      }
      switch (static_cast<FarmOp>(frame.opcode)) {
        case FarmOp::kDone:
          *done = true;
          return Status::Ok();
        case FarmOp::kNoWork:
          SleepSeconds(options_.no_work_poll_s);
          continue;
        case FarmOp::kLeaseGrant:
          break;
        default:
          return Status::IoError("unexpected frame awaiting lease");
      }
      LeaseGrantMsg grant;
      if (!DecodeLeaseGrant(frame.payload, &grant).ok()) {
        return Status::IoError("malformed lease grant");
      }

      cancel_.Reset();
      ResetCounters(counters_);
      current_lease_.store(grant.lease_id, std::memory_order_release);
      Stopwatch lease_watch;
      MinerStats stats;
      std::vector<MineSegment> segments =
          miner_.MineFarmLease(grant.root_row, &cancel_, &stats);
      current_lease_.store(0, std::memory_order_release);
      if (stats.timed_out) {
        // Revoked (or deadline-expired) mid-mine: the partial result
        // must never be uploaded — the coordinator re-leases the row.
        continue;
      }
      ResultMsg msg;
      msg.lease_id = grant.lease_id;
      msg.root_row = grant.root_row;
      msg.nodes_visited = stats.nodes_visited;
      msg.mine_seconds = lease_watch.ElapsedSeconds();
      msg.segments_wire = EncodeSegments(segments);
      pending_result_frame_ = EncodeResult(std::move(msg));
      have_pending_result_ = true;
    }
    return Status::Ok();
  }();

  {
    MutexLock lock(beat_mutex_);
    session_over_ = true;
  }
  beat_cv_.NotifyAll();
  ::shutdown(fd, SHUT_RDWR);  // Unblocks the reader's recv.
  reader.join();
  beater.join();
  return result;
}

}  // namespace farm
}  // namespace farmer
