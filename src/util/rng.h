#ifndef FARMER_UTIL_RNG_H_
#define FARMER_UTIL_RNG_H_

#include <cstdint>
#include <cmath>

namespace farmer {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Self-contained so synthetic datasets are bit-identical across platforms
/// and standard-library versions — std::mt19937 is portable but the
/// std::*_distribution wrappers are not.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Standard normal variate (Box–Muller; one value per call).
  double NextGaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return mag * std::cos(kTwoPi * u2);
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace farmer

#endif  // FARMER_UTIL_RNG_H_
