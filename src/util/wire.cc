#include "util/wire.h"

#include <cstring>

namespace farmer {
namespace wire {

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

bool Reader::ReadU8(std::uint8_t* out) {
  if (data_.size() - pos_ < 1) return false;
  *out = static_cast<std::uint8_t>(data_[pos_]);
  pos_ += 1;
  return true;
}

bool Reader::ReadU32(std::uint32_t* out) {
  if (data_.size() - pos_ < 4) return false;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]);
  }
  *out = v;
  pos_ += 4;
  return true;
}

bool Reader::ReadU64(std::uint64_t* out) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
  *out = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}

bool Reader::ReadF64(double* out) {
  std::uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  std::memcpy(out, &bits, sizeof(*out));
  return true;
}

bool Reader::ReadString(std::string_view* out) {
  std::uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (data_.size() - pos_ < len) return false;
  *out = data_.substr(pos_, len);
  pos_ += len;
  return true;
}

FrameExtract ExtractFrame(std::string_view buffer, std::size_t max_payload,
                          std::size_t* consumed, std::uint8_t* opcode,
                          std::string_view* payload, std::string* error) {
  if (buffer.size() < 4) return FrameExtract::kNeedMore;
  std::uint32_t length = 0;
  for (int i = 3; i >= 0; --i) {
    length = (length << 8) |
             static_cast<std::uint8_t>(buffer[static_cast<std::size_t>(i)]);
  }
  if (length < 1) {
    *error = "frame length 0 (a frame is at least its opcode byte)";
    return FrameExtract::kError;
  }
  if (length > 1 + max_payload) {
    *error = "frame length " + std::to_string(length) + " exceeds " +
             std::to_string(1 + max_payload) + " bytes";
    return FrameExtract::kError;
  }
  if (buffer.size() - 4 < length) return FrameExtract::kNeedMore;
  *opcode = static_cast<std::uint8_t>(buffer[4]);
  *payload = buffer.substr(5, length - 1);
  *consumed = 4 + static_cast<std::size_t>(length);
  return FrameExtract::kComplete;
}

void AppendFrame(std::string* out, std::uint8_t opcode,
                 std::string_view payload) {
  PutU32(out, static_cast<std::uint32_t>(1 + payload.size()));
  out->push_back(static_cast<char>(opcode));
  out->append(payload);
}

}  // namespace wire
}  // namespace farmer
