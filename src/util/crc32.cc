#include "util/crc32.h"

#include <array>

namespace farmer {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? (c >> 1) ^ kPolynomial : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace farmer
