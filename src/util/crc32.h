#ifndef FARMER_UTIL_CRC32_H_
#define FARMER_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace farmer {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used by the
/// snapshot store to detect truncated or bit-flipped sections. Standard
/// reflected table-driven implementation; matches zlib's crc32().
///
/// Incremental use: pass the previous return value as `seed` to extend a
/// running checksum over multiple buffers.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace farmer

#endif  // FARMER_UTIL_CRC32_H_
