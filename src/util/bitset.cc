#include "util/bitset.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace farmer {

void Bitset::Resize(std::size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, 0);
  TrimTail();
}

void Bitset::ResetAll() { std::fill(words_.begin(), words_.end(), 0); }

void Bitset::ResetPrefix(std::size_t pos_limit) {
  const std::size_t limit = std::min(pos_limit, num_bits_);
  const std::size_t full_words = limit >> 6;
  std::fill(words_.begin(), words_.begin() + full_words, 0);
  const std::size_t tail = limit & 63;
  if (tail != 0) words_[full_words] &= ~((kOne << tail) - 1);
}

void Bitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  TrimTail();
}

std::size_t Bitset::Count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += __builtin_popcountll(w);
  return total;
}

std::size_t Bitset::CountPrefix(std::size_t pos_limit) const {
  if (pos_limit >= num_bits_) return Count();
  const std::size_t full_words = pos_limit >> 6;
  std::size_t total = 0;
  for (std::size_t i = 0; i < full_words; ++i) {
    total += __builtin_popcountll(words_[i]);
  }
  const std::size_t tail = pos_limit & 63;
  if (tail != 0) {
    total += __builtin_popcountll(words_[full_words] & ((kOne << tail) - 1));
  }
  return total;
}

std::size_t Bitset::AndCountPrefix(const Bitset& other,
                                   std::size_t pos_limit) const {
  const std::size_t limit = std::min(pos_limit, std::min(num_bits_,
                                                         other.num_bits_));
  const std::size_t full_words = limit >> 6;
  std::size_t total = 0;
  for (std::size_t i = 0; i < full_words; ++i) {
    total += __builtin_popcountll(words_[i] & other.words_[i]);
  }
  const std::size_t tail = limit & 63;
  if (tail != 0) {
    total += __builtin_popcountll(words_[full_words] &
                                  other.words_[full_words] &
                                  ((kOne << tail) - 1));
  }
  return total;
}

bool Bitset::IntersectsAllOf(const Bitset* const* sets, std::size_t count,
                             Bitset* scratch) const {
  *scratch = *this;
  for (std::size_t i = 0; i < count; ++i) {
    *scratch &= *sets[i];
    if (scratch->None()) return false;
  }
  return scratch->Any();
}

void Bitset::AndInto(const Bitset& a, const Bitset& b, Bitset* out) {
  out->num_bits_ = a.num_bits_;
  out->words_.resize(a.words_.size());
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    out->words_[i] = a.words_[i] & b.words_[i];
  }
}

void Bitset::AndNotInto(const Bitset& a, const Bitset& b, Bitset* out) {
  out->num_bits_ = a.num_bits_;
  out->words_.resize(a.words_.size());
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    out->words_[i] = a.words_[i] & ~b.words_[i];
  }
}

void Bitset::OrAnd(const Bitset& a, const Bitset& b) {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= a.words_[i] & b.words_[i];
  }
}

bool Bitset::None() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  for (std::size_t i = n; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  return true;
}

bool Bitset::Intersects(const Bitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::size_t Bitset::IntersectCount(const Bitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += __builtin_popcountll(words_[i] & other.words_[i]);
  }
  return total;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  if (other.num_bits_ > num_bits_) Resize(other.num_bits_);
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
  for (std::size_t i = n; i < words_.size(); ++i) words_[i] = 0;
  return *this;
}

Bitset& Bitset::operator-=(const Bitset& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::size_t Bitset::FindFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) return w * 64 + __builtin_ctzll(words_[w]);
  }
  return num_bits_;
}

std::size_t Bitset::FindNext(std::size_t pos) const {
  ++pos;
  if (pos >= num_bits_) return num_bits_;
  std::size_t w = pos >> 6;
  std::uint64_t word = words_[w] >> (pos & 63);
  if (word != 0) return pos + __builtin_ctzll(word);
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) return w * 64 + __builtin_ctzll(words_[w]);
  }
  return num_bits_;
}

std::vector<std::size_t> Bitset::ToVector() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  ForEach([&out](std::size_t pos) { out.push_back(pos); });
  return out;
}

std::string Bitset::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  ForEach([&](std::size_t pos) {
    if (!first) os << ',';
    first = false;
    os << pos;
  });
  os << '}';
  return os.str();
}

std::size_t Bitset::Hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;  // FNV prime.
  }
  return static_cast<std::size_t>(h);
}

void Bitset::CheckInvariants() const {
  FARMER_CHECK(words_.size() == (num_bits_ + 63) / 64)
      << "size=" << num_bits_ << " words=" << words_.size();
  const std::size_t tail = num_bits_ & 63;
  if (tail != 0) {
    FARMER_CHECK((words_.back() & ~((kOne << tail) - 1)) == 0)
        << "bits set beyond size()=" << num_bits_;
  }
}

void Bitset::TrimTail() {
  const std::size_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (kOne << tail) - 1;
  }
}

}  // namespace farmer
