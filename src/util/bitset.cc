#include "util/bitset.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/simd/simd.h"

// Every word-parallel kernel below calls through the process-wide SIMD
// kernel table (src/util/simd/): one relaxed atomic load plus an
// indirect call selects the scalar, SSE4.2/POPCNT, AVX2, or AVX-512
// variant picked at startup (or forced via FARMER_SIMD /
// simd::ForceLevel). Tail-bit handling stays here — the kernels see
// whole words only — so each per-ISA unit stays a straight-line loop.

namespace farmer {

namespace {
inline const simd::KernelTable& Kernels() { return simd::Active(); }
}  // namespace

void Bitset::Resize(std::size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, 0);
  TrimTail();
}

void Bitset::ResetAll() { std::fill(words_.begin(), words_.end(), 0); }

void Bitset::ResetPrefix(std::size_t pos_limit) {
  const std::size_t limit = std::min(pos_limit, num_bits_);
  const std::size_t full_words = limit >> 6;
  std::fill(words_.begin(), words_.begin() + full_words, 0);
  const std::size_t tail = limit & 63;
  if (tail != 0) words_[full_words] &= ~((kOne << tail) - 1);
}

void Bitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  TrimTail();
}

std::size_t Bitset::Count() const {
  return Kernels().count(words_.data(), words_.size());
}

std::size_t Bitset::CountPrefix(std::size_t pos_limit) const {
  if (pos_limit >= num_bits_) return Count();
  const std::size_t full_words = pos_limit >> 6;
  std::size_t total = Kernels().count(words_.data(), full_words);
  const std::size_t tail = pos_limit & 63;
  if (tail != 0) {
    total += static_cast<std::size_t>(
        __builtin_popcountll(words_[full_words] & ((kOne << tail) - 1)));
  }
  return total;
}

std::size_t Bitset::AndCountPrefix(const Bitset& other,
                                   std::size_t pos_limit) const {
  const std::size_t limit = std::min(pos_limit, std::min(num_bits_,
                                                         other.num_bits_));
  const std::size_t full_words = limit >> 6;
  std::size_t total =
      Kernels().and_count(words_.data(), other.words_.data(), full_words);
  const std::size_t tail = limit & 63;
  if (tail != 0) {
    total += static_cast<std::size_t>(
        __builtin_popcountll(words_[full_words] & other.words_[full_words] &
                             ((kOne << tail) - 1)));
  }
  return total;
}

bool Bitset::IntersectsAllOf(const Bitset* const* sets, std::size_t count,
                             Bitset* scratch) const {
  *scratch = *this;
  const simd::KernelTable& k = Kernels();
  for (std::size_t i = 0; i < count; ++i) {
    const Bitset& s = *sets[i];
    if (s.words_.size() == scratch->words_.size()) {
      // Fused pass: intersect and emptiness-test in one sweep.
      if (k.and_into_any(scratch->words_.data(), s.words_.data(),
                         scratch->words_.data(),
                         scratch->words_.size()) == 0) {
        return false;
      }
    } else {
      *scratch &= s;
      if (scratch->None()) return false;
    }
  }
  return count > 0 || scratch->Any();
}

void Bitset::AndInto(const Bitset& a, const Bitset& b, Bitset* out) {
  out->num_bits_ = a.num_bits_;
  out->words_.resize(a.words_.size());
  Kernels().and_into(a.words_.data(), b.words_.data(), out->words_.data(),
                     a.words_.size());
}

void Bitset::AndNotInto(const Bitset& a, const Bitset& b, Bitset* out) {
  out->num_bits_ = a.num_bits_;
  out->words_.resize(a.words_.size());
  Kernels().and_not_into(a.words_.data(), b.words_.data(),
                         out->words_.data(), a.words_.size());
}

void Bitset::OrAnd(const Bitset& a, const Bitset& b) {
  Kernels().or_and(words_.data(), a.words_.data(), b.words_.data(),
                   words_.size());
}

bool Bitset::None() const {
  return Kernels().none(words_.data(), words_.size());
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  const simd::KernelTable& k = Kernels();
  if (!k.is_subset_of(words_.data(), other.words_.data(), n)) return false;
  return k.none(words_.data() + n, words_.size() - n);
}

bool Bitset::Intersects(const Bitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  return Kernels().intersects(words_.data(), other.words_.data(), n);
}

std::size_t Bitset::IntersectCount(const Bitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  return Kernels().and_count(words_.data(), other.words_.data(), n);
}

Bitset& Bitset::operator|=(const Bitset& other) {
  if (other.num_bits_ > num_bits_) Resize(other.num_bits_);
  Kernels().or_inplace(words_.data(), other.words_.data(),
                       other.words_.size());
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  Kernels().and_inplace(words_.data(), other.words_.data(), n);
  std::fill(words_.begin() + n, words_.end(), 0);
  return *this;
}

Bitset& Bitset::operator-=(const Bitset& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  Kernels().and_not_inplace(words_.data(), other.words_.data(), n);
  return *this;
}

std::size_t Bitset::FindFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) return w * 64 + __builtin_ctzll(words_[w]);
  }
  return num_bits_;
}

std::size_t Bitset::FindNext(std::size_t pos) const {
  ++pos;
  if (pos >= num_bits_) return num_bits_;
  std::size_t w = pos >> 6;
  std::uint64_t word = words_[w] >> (pos & 63);
  if (word != 0) return pos + __builtin_ctzll(word);
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) return w * 64 + __builtin_ctzll(words_[w]);
  }
  return num_bits_;
}

std::vector<std::size_t> Bitset::ToVector() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  ForEach([&out](std::size_t pos) { out.push_back(pos); });
  return out;
}

std::string Bitset::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  ForEach([&](std::size_t pos) {
    if (!first) os << ',';
    first = false;
    os << pos;
  });
  os << '}';
  return os.str();
}

std::size_t Bitset::Hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;  // FNV prime.
  }
  return static_cast<std::size_t>(h);
}

void Bitset::CheckInvariants() const {
  FARMER_CHECK(words_.size() == (num_bits_ + 63) / 64)
      << "size=" << num_bits_ << " words=" << words_.size();
  const std::size_t tail = num_bits_ & 63;
  if (tail != 0) {
    FARMER_CHECK((words_.back() & ~((kOne << tail) - 1)) == 0)
        << "bits set beyond size()=" << num_bits_;
  }
}

void Bitset::TrimTail() {
  const std::size_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (kOne << tail) - 1;
  }
}

}  // namespace farmer
