#ifndef FARMER_UTIL_SYNC_H_
#define FARMER_UTIL_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "util/check.h"

/// The project's synchronization vocabulary, annotated for Clang's
/// -Wthread-safety analysis (docs/STATIC_ANALYSIS.md has the catalog).
///
/// Every mutex, lock guard, and condition variable in src/ goes through
/// the wrappers below — never through <mutex> directly (tools/
/// farmer_lint.py enforces this, rule `raw-sync`). The wrappers carry
/// capability attributes, so which lock guards which field is part of
/// each class declaration (`FARMER_GUARDED_BY(mutex_)`) and Clang proves
/// at compile time that every access happens under the right lock. On
/// compilers without the attributes (GCC) the macros expand to nothing
/// and the wrappers compile to exactly the std primitives they wrap.
///
/// For state that is *thread-confined* rather than lock-protected (the
/// serve shards' connection maps, parser buffers), ThreadChecker gives
/// the same discipline a runtime teeth: debug builds abort on access
/// from a foreign thread.

#if defined(__clang__) && !defined(SWIG)
#define FARMER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FARMER_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable type).
#define FARMER_CAPABILITY(x) FARMER_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define FARMER_SCOPED_CAPABILITY FARMER_THREAD_ANNOTATION(scoped_lockable)

/// Field attribute: reads and writes require holding `x`.
#define FARMER_GUARDED_BY(x) FARMER_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-field attribute: the pointed-to data requires holding `x`.
#define FARMER_PT_GUARDED_BY(x) FARMER_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: the caller must hold the listed capabilities.
#define FARMER_REQUIRES(...) \
  FARMER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: acquires the listed capabilities (not held on
/// entry, held on exit).
#define FARMER_ACQUIRE(...) \
  FARMER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the listed capabilities.
#define FARMER_RELEASE(...) \
  FARMER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value
/// equals the first argument.
#define FARMER_TRY_ACQUIRE(...) \
  FARMER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the listed capabilities
/// (deadlock prevention for self-locking methods).
#define FARMER_EXCLUDES(...) \
  FARMER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: returns a reference to the listed capability.
#define FARMER_RETURN_CAPABILITY(x) \
  FARMER_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use
/// needs an adjacent comment saying why the analysis cannot see the
/// invariant.
#define FARMER_NO_THREAD_SAFETY_ANALYSIS \
  FARMER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace farmer {

/// A plain (non-recursive, non-shared) mutex carrying the `capability`
/// attribute. Prefer MutexLock over calling Lock()/Unlock() directly;
/// the explicit pair exists for the rare non-scoped protocol.
class FARMER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FARMER_ACQUIRE() { mu_.lock(); }
  void Unlock() FARMER_RELEASE() { mu_.unlock(); }
  bool TryLock() FARMER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  // The one place in src/ a raw std primitive is allowed: this is the
  // wrapped instance itself.
  std::mutex mu_;
};

/// RAII lock for a Mutex — the project's spelling of std::lock_guard.
class FARMER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FARMER_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FARMER_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the Mutex wrapper. Every Wait overload
/// REQUIRES the mutex, so forgetting the lock is a compile error on
/// Clang instead of undefined behavior at 3am. Predicates must not
/// throw (they run with the internal adopted lock in flight).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires before return.
  void Wait(Mutex& mu) FARMER_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // The caller's MutexLock still owns the unlock.
  }

  /// Waits until `pred()` holds (loops over spurious wakeups). Only for
  /// predicates over atomics or otherwise lock-free state: the analysis
  /// does not thread the held-lock set into the predicate call, so a
  /// predicate reading FARMER_GUARDED_BY fields should instead be
  /// written as an explicit `while (!cond) cv.Wait(mu);` loop at the
  /// call site, where the analysis sees the lock.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) FARMER_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted, std::move(pred));
    adopted.release();
  }

  /// Timed wait: returns true when woken before `seconds` elapsed
  /// (spurious wakeups included), false on timeout. Re-check the
  /// condition either way.
  bool WaitForSeconds(Mutex& mu, double seconds) FARMER_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(adopted, std::chrono::duration<double>(seconds));
    adopted.release();
    return status == std::cv_status::no_timeout;
  }

  /// Wake-ups need not hold the mutex (both orders are TSan-clean; the
  /// waiter re-checks its predicate under the lock either way).
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Debug-build ownership assertion for thread-confined state — the
/// static counterpart is documentation plus the farmer_lint.py
/// event-loop rules; this is the runtime teeth.
///
/// The checker binds to the first thread that calls
/// CalledOnValidThread() (not the constructing thread: the serve
/// acceptor builds each Shard that a different thread then owns);
/// every later call verifies the caller is that thread. Detach()
/// unbinds so an object can be handed off between confinement eras.
///
/// Use through the macro so release builds compile the check away:
///
///   struct Shard {
///     ThreadChecker checker;
///     std::unordered_map<int, Conn> conns;  // confined to the shard
///   };
///   void Server::HandleReadable(Shard& shard, ...) {
///     FARMER_DCHECK_CALLED_ON(shard.checker);
///     ...
///   }
class ThreadChecker {
 public:
  ThreadChecker() = default;
  ThreadChecker(const ThreadChecker&) = delete;
  ThreadChecker& operator=(const ThreadChecker&) = delete;

  /// True when called from the owning thread; the first call after
  /// construction or Detach() claims ownership and returns true.
  bool CalledOnValidThread() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // id{} == "no thread": unbound.
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return true;
    }
    return expected == self;
  }

  /// Unbinds; the next CalledOnValidThread() claims ownership anew.
  void Detach() {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::thread::id> owner_{std::thread::id{}};
};

}  // namespace farmer

/// Asserts (debug builds / FARMER_FORCE_DCHECKS) that the calling
/// thread owns `checker`'s confined state. Compiles to nothing under
/// NDEBUG, so release hot paths pay zero.
#define FARMER_DCHECK_CALLED_ON(checker)                 \
  FARMER_DCHECK((checker).CalledOnValidThread())         \
      << "thread-confined state accessed from a foreign" \
      << " thread (ThreadChecker violation)"

#endif  // FARMER_UTIL_SYNC_H_
