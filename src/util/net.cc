#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace farmer {
namespace net {

namespace {

// The overload pair absorbs both strerror_r flavors (XSI returns int,
// GNU returns the message pointer) without feature-macro guessing.
[[maybe_unused]] const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* StrerrorResult(const char* msg,
                                            const char* /*buf*/) {
  return msg;
}

bool ParseAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

std::string ErrnoString(int err) {
  char buf[256];
  buf[0] = '\0';
  return StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetTcpNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetSendTimeoutMs(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status OpenListener(const std::string& host, int port, int* out_fd,
                    int* out_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket(): " + ErrnoString(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr)) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return Status::IoError("bind(): " + err);
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return Status::IoError("listen(): " + err);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return Status::IoError("getsockname(): " + err);
  }
  *out_fd = fd;
  *out_port = ntohs(bound.sin_port);
  return Status::Ok();
}

Status ConnectToHost(const std::string& host, int port,
                     double timeout_seconds, int* out_fd) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket(): " + ErrnoString(errno));
  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr)) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (timeout_seconds <= 0.0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string err = ErrnoString(errno);
      ::close(fd);
      return Status::IoError("connect " + host + ":" +
                             std::to_string(port) + ": " + err);
    }
    *out_fd = fd;
    return Status::Ok();
  }

  // Timed connect: go non-blocking, start the connect, wait for
  // writability, read SO_ERROR for the real outcome, restore blocking.
  if (!SetNonBlocking(fd)) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return Status::IoError("fcntl(O_NONBLOCK): " + err);
  }
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      const std::string err = ErrnoString(errno);
      ::close(fd);
      return Status::IoError("connect " + host + ":" +
                             std::to_string(port) + ": " + err);
    }
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int timeout_ms =
        static_cast<int>(std::lround(timeout_seconds * 1000.0));
    int polled;
    do {
      polled = ::poll(&pfd, 1, timeout_ms < 1 ? 1 : timeout_ms);
    } while (polled < 0 && errno == EINTR);
    if (polled < 0) {
      const std::string err = ErrnoString(errno);
      ::close(fd);
      return Status::IoError("poll(): " + err);
    }
    if (polled == 0) {
      ::close(fd);
      return Status::IoError("connect " + host + ":" +
                             std::to_string(port) + ": timed out");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      const std::string err =
          ErrnoString(so_error != 0 ? so_error : errno);
      ::close(fd);
      return Status::IoError("connect " + host + ":" +
                             std::to_string(port) + ": " + err);
    }
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return Status::IoError("fcntl(restore blocking): " + err);
  }
  *out_fd = fd;
  return Status::Ok();
}

bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string HttpResponse(const char* status_line, const char* content_type,
                         std::string_view body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out.append(body.data(), body.size());
  return out;
}

}  // namespace net
}  // namespace farmer
