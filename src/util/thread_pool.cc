#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace farmer {

namespace {

// Identity of the worker the current thread belongs to, so Submit() from
// inside a task lands on that worker's own deque. Plain thread_locals:
// worker threads belong to exactly one pool for their whole lifetime.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker_id = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  MutexLock shutdown_lock(shutdown_mutex_);
  if (shut_down_) return;
  stopping_.store(true, std::memory_order_relaxed);
  {
    MutexLock lock(sleep_mutex_);
    work_available_.NotifyAll();
  }
  for (std::thread& w : workers_) w.join();
  shut_down_ = true;
}

void ThreadPool::PushTask(std::size_t queue_index, Task task) {
  WorkerQueue& q = *queues_[queue_index];
  MutexLock lock(q.mutex);
  q.tasks.push_back(std::move(task));
}

void ThreadPool::Submit(std::function<void(std::size_t)> task) {
  FARMER_CHECK(!stopping_.load(std::memory_order_relaxed))
      << "Submit() on a shut-down ThreadPool";
  // Count before publishing: a worker may pop and finish the task the
  // moment it is visible, and in_flight_ must never dip to 0 in between.
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_relaxed);
  std::size_t qi;
  if (tls_pool == this) {
    qi = tls_worker_id;
  } else {
    qi = next_external_.fetch_add(1, std::memory_order_relaxed) %
         queues_.size();
  }
  PushTask(qi, std::move(task));
  // The empty critical section orders this notify after any worker that
  // observed pending_ == 0 has actually gone to sleep (no lost wakeup).
  MutexLock lock(sleep_mutex_);
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(sleep_mutex_);
  all_done_.Wait(sleep_mutex_, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::PopLocal(std::size_t id, Task* out) {
  WorkerQueue& q = *queues_[id];
  MutexLock lock(q.mutex);
  if (q.tasks.empty()) return false;
  *out = std::move(q.tasks.back());
  q.tasks.pop_back();
  const std::size_t was = pending_.fetch_sub(1, std::memory_order_relaxed);
  FARMER_DCHECK(was > 0);
  return true;
}

bool ThreadPool::StealInto(std::size_t id, Task* out) {
  const std::size_t n = queues_.size();
  for (std::size_t probe = 1; probe < n; ++probe) {
    const std::size_t victim = (id + probe) % n;
    // Take the front half into a local buffer first, then deposit into
    // our own deque. Never holding two deque locks at once rules out the
    // steal-from-each-other deadlock by construction.
    std::vector<Task> loot;
    {
      WorkerQueue& q = *queues_[victim];
      MutexLock lock(q.mutex);
      if (q.tasks.empty()) continue;
      const std::size_t take = (q.tasks.size() + 1) / 2;
      loot.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        loot.push_back(std::move(q.tasks.front()));
        q.tasks.pop_front();
      }
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    stolen_tasks_.fetch_add(loot.size(), std::memory_order_relaxed);
    if (PoolObserver* obs = observer_.load(std::memory_order_acquire);
        obs != nullptr) {
      obs->OnSteal(id, victim, loot.size());
    }
    // Run the oldest stolen task now; queue the rest back-to-front so the
    // local LIFO pop preserves their age order.
    *out = std::move(loot.front());
    const std::size_t was = pending_.fetch_sub(1, std::memory_order_relaxed);
    FARMER_DCHECK(was > 0);
    if (loot.size() > 1) {
      WorkerQueue& mine = *queues_[id];
      MutexLock lock(mine.mutex);
      for (std::size_t i = loot.size(); i > 1; --i) {
        mine.tasks.push_back(std::move(loot[i - 1]));
      }
    }
    return true;
  }
  return false;
}

void ThreadPool::CheckQuiescent() {
  // Ordered counter reads first: once in_flight_ is 0 and no Submit is
  // racing (the caller's contract), workers only sleep.
  FARMER_CHECK(in_flight_.load(std::memory_order_acquire) == 0)
      << "tasks still running";
  FARMER_CHECK(pending_.load(std::memory_order_acquire) == 0)
      << "tasks still queued";
  std::size_t queued = 0;
  for (const std::unique_ptr<WorkerQueue>& q : queues_) {
    MutexLock lock(q->mutex);
    queued += q->tasks.size();
  }
  FARMER_CHECK(queued == 0)
      << queued << " tasks in deques while pending_ == 0";
}

void ThreadPool::WorkerLoop(std::size_t worker_id) {
  tls_pool = this;
  tls_worker_id = worker_id;
  for (;;) {
    Task task;
    if (PopLocal(worker_id, &task) || StealInto(worker_id, &task)) {
      task(worker_id);
      task = nullptr;  // Release captures before the done check.
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(sleep_mutex_);
        all_done_.NotifyAll();
        work_available_.NotifyAll();  // Stopping workers re-check exit.
      }
      continue;
    }
    {
      MutexLock lock(sleep_mutex_);
      work_available_.Wait(sleep_mutex_, [this] {
        return pending_.load(std::memory_order_relaxed) > 0 ||
               (stopping_.load(std::memory_order_relaxed) &&
                in_flight_.load(std::memory_order_relaxed) == 0);
      });
    }
    // The exit decision reads only atomics, so re-checking after the
    // lock is dropped is equivalent to deciding under it.
    if (stopping_.load(std::memory_order_relaxed) &&
        in_flight_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

}  // namespace farmer
