#include "util/thread_pool.h"

#include <algorithm>

namespace farmer {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void(std::size_t)> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(std::size_t worker_id) {
  for (;;) {
    std::function<void(std::size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker_id);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace farmer
