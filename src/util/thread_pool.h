#ifndef FARMER_UTIL_THREAD_POOL_H_
#define FARMER_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace farmer {

/// A cooperative cancellation flag shared between the submitter and the
/// workers of a ThreadPool. Long-running tasks poll `Cancelled()` at their
/// natural checkpoint granularity (the miners use enumeration nodes) and
/// return early once it fires — e.g. when one worker's deadline expires,
/// it cancels its siblings so the whole pool drains promptly instead of
/// each worker discovering the timeout on its own.
class CancelFlag {
 public:
  bool Cancelled() const { return flag_.load(std::memory_order_relaxed); }
  void Cancel() { flag_.store(true, std::memory_order_relaxed); }
  void Reset() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Scheduler-event listener for observability layers. Implementations
/// must be cheap and thread-safe: callbacks fire on worker threads, in
/// the scheduling path (though never under a deque lock).
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;

  /// A successful steal: worker `thief` transferred `tasks_taken` tasks
  /// from worker `victim`'s deque (and is about to run the oldest one).
  virtual void OnSteal(std::size_t thief, std::size_t victim,
                       std::size_t tasks_taken) = 0;
};

/// A fixed-size pool of worker threads with per-worker work-stealing
/// deques.
///
/// Each worker owns a deque: it pushes and pops at the back (LIFO, so a
/// task tree is mined depth-first and stays cache-warm), while idle
/// workers steal from the front (FIFO — the oldest tasks, which in a
/// recursive decomposition are the largest subtrees). A thief takes half
/// of the victim's queue in one lock acquisition, which rebalances skewed
/// workloads in O(log n) steal operations instead of one steal per task.
///
/// Tasks receive the id of the worker running them (in [0, num_threads())),
/// so callers can hand each worker private scratch state without locking.
/// Submit() is legal from anywhere, *including from inside a running
/// task*: a worker submits to its own deque without waking anyone unless
/// siblings are idle, which is what makes recursive subtree splitting
/// cheap. Tasks must not throw.
///
/// Wait() blocks the calling (non-worker) thread until every submitted
/// task — including tasks submitted by other tasks — has finished; the
/// destructor waits for pending work and joins the workers. The pool is
/// reusable: Submit/Wait cycles can repeat.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. From a worker thread of this pool the task lands on
  /// that worker's own deque; from any other thread it is distributed
  /// round-robin.
  void Submit(std::function<void(std::size_t worker_id)> task);

  /// Blocks until no task is queued or running. Must not be called from
  /// inside a task (a worker waiting for the pool would deadlock).
  void Wait();

  /// Waits for every pending task, then joins the workers. After
  /// Shutdown() the pool is inert: Submit() is a contract violation
  /// (FARMER_CHECK) rather than a silent drop. Idempotent; the
  /// destructor calls it. Must not be called from inside a task.
  void Shutdown();

  /// Tasks currently queued (not yet running). Approximate by nature —
  /// used by adaptive splitters to decide whether the pool is hungry.
  std::size_t ApproxPending() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Number of successful steal operations since construction (each may
  /// transfer several tasks).
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Total tasks transferred by steals since construction.
  std::uint64_t stolen_task_count() const {
    return stolen_tasks_.load(std::memory_order_relaxed);
  }

  /// Installs (or, with nullptr, removes) the scheduler-event observer.
  /// Install while the pool is quiescent — before the first Submit of a
  /// batch or after Wait() — so callbacks never race the swap; the
  /// observer must outlive its installation window.
  void SetObserver(PoolObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

  /// Contract check that the pool is quiescent: no task queued or
  /// running, every deque empty, and the pending counter agrees with the
  /// deques. Only meaningful after Wait() returned (concurrent Submits
  /// would race the inspection); fails a FARMER_CHECK on violation. The
  /// parallel miner calls this after every drained search when
  /// MinerOptions::verify_invariants is on.
  void CheckQuiescent();

 private:
  using Task = std::function<void(std::size_t)>;

  // One worker's deque. Guarded by its own mutex: the owner touches the
  // back, thieves the front; either way the critical sections are a few
  // pointer moves, so a spinless mutex per deque is cheap and TSan-clean.
  struct WorkerQueue {
    Mutex mutex;
    std::deque<Task> tasks FARMER_GUARDED_BY(mutex);
  };

  void WorkerLoop(std::size_t worker_id);
  // Pops the newest task of worker `id`'s own deque.
  bool PopLocal(std::size_t id, Task* out);
  // Steals half of some other worker's queue (front half); the first
  // stolen task is returned, the rest move to worker `id`'s deque.
  bool StealInto(std::size_t id, Task* out);
  void PushTask(std::size_t queue_index, Task task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<std::size_t> pending_{0};    // Queued, not yet running.
  std::atomic<std::size_t> in_flight_{0};  // Queued + running.
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolen_tasks_{0};
  std::atomic<PoolObserver*> observer_{nullptr};
  std::atomic<std::size_t> next_external_{0};  // Round-robin for outsiders.

  // Sleep/wake plumbing. `sleep_mutex_` only serializes the transitions
  // into and out of idle sleep; the deques have their own locks.
  Mutex sleep_mutex_;
  CondVar work_available_;
  CondVar all_done_;

  // Serializes Shutdown() (a signal-driven stop racing the destructor
  // must not both join the workers).
  Mutex shutdown_mutex_;
  bool shut_down_ FARMER_GUARDED_BY(shutdown_mutex_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace farmer

#endif  // FARMER_UTIL_THREAD_POOL_H_
