#ifndef FARMER_UTIL_THREAD_POOL_H_
#define FARMER_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace farmer {

/// A cooperative cancellation flag shared between the submitter and the
/// workers of a ThreadPool. Long-running tasks poll `Cancelled()` at their
/// natural checkpoint granularity (the miners use enumeration nodes) and
/// return early once it fires — e.g. when one worker's deadline expires,
/// it cancels its siblings so the whole pool drains promptly instead of
/// each worker discovering the timeout on its own.
class CancelFlag {
 public:
  bool Cancelled() const { return flag_.load(std::memory_order_relaxed); }
  void Cancel() { flag_.store(true, std::memory_order_relaxed); }
  void Reset() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// A fixed-size pool of worker threads draining a FIFO work queue.
///
/// Tasks receive the id of the worker running them (in [0, num_threads())),
/// so callers can hand each worker private scratch state without locking.
/// Tasks must not throw and must not Submit() from inside a task.
/// Wait() blocks the submitting thread until every submitted task has
/// finished; the destructor waits for pending work and joins the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void(std::size_t worker_id)> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

 private:
  void WorkerLoop(std::size_t worker_id);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void(std::size_t)>> queue_;
  std::size_t in_flight_ = 0;  // Queued + running tasks.
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace farmer

#endif  // FARMER_UTIL_THREAD_POOL_H_
