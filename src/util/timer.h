#ifndef FARMER_UTIL_TIMER_H_
#define FARMER_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace farmer {

/// A simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A cooperative deadline handed to long-running miners.
///
/// Miners call Expired() at enumeration-node granularity and abandon the
/// search when it returns true, reporting `timed_out` in their result. The
/// default-constructed Deadline never expires. Checking is cheap: the clock
/// is only consulted every `kCheckInterval` calls.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Expires `seconds` from now. Non-positive values mean "never".
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds > 0) {
      d.has_deadline_ = true;
      d.deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(seconds));
    }
    return d;
  }

  /// True once the deadline has passed. Mutable counter throttles clock
  /// reads; safe to call at very high frequency.
  bool Expired() const {
    if (!has_deadline_) return false;
    if (expired_) return true;
    if (++calls_ % kCheckInterval != 0) return false;
    expired_ = Clock::now() >= deadline_;
    return expired_;
  }

  /// Unthrottled expiry check: consults the clock on every call. For
  /// checkpoints that are reached rarely but may be preceded by long
  /// uninterruptible work (e.g. one MineLB update step), where the
  /// throttled Expired() could stay blind for hundreds of calls.
  bool ExpiredNow() const {
    if (!has_deadline_) return false;
    if (expired_) return true;
    expired_ = Clock::now() >= deadline_;
    return expired_;
  }

  bool has_deadline() const { return has_deadline_; }

  /// Seconds until expiry (negative once past). Without a deadline,
  /// a large sentinel (1e18) — callers treat it as "plenty".
  double SecondsRemaining() const {
    if (!has_deadline_) return 1e18;
    return std::chrono::duration<double>(deadline_ - Clock::now())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::uint32_t kCheckInterval = 256;

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  mutable std::uint32_t calls_ = 0;
  mutable bool expired_ = false;
};

}  // namespace farmer

#endif  // FARMER_UTIL_TIMER_H_
