#ifndef FARMER_UTIL_ALIGNED_H_
#define FARMER_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>

namespace farmer {

/// Minimal C++17 std::allocator drop-in that over-aligns every
/// allocation to `Alignment` bytes via the aligned operator new.
///
/// Bitset uses it to keep its word storage on 64-byte boundaries so the
/// widest SIMD kernels (src/util/simd/) never issue a vector load that
/// straddles a cache line. Value semantics are untouched: a
/// std::vector<T, AlignedAllocator<T, N>> holds exactly the same bytes
/// as a std::vector<T>, it just starts them at a rounder address.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace farmer

#endif  // FARMER_UTIL_ALIGNED_H_
