#ifndef FARMER_UTIL_WIRE_H_
#define FARMER_UTIL_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace farmer {
namespace wire {

/// Little-endian wire primitives and the length-prefixed frame layout
/// shared by the serve (FQP1) and farm (FMP1) binary protocols:
///
///   frame   u32 length | u8 opcode | payload (length - 1 bytes)
///
/// `length` counts the opcode byte plus the payload, so a complete
/// frame is at least 5 bytes on the wire and a length of 0 is always a
/// protocol error. The two protocols differ only in their 4-byte
/// connection preamble and their per-frame payload cap; the extraction
/// loop, the bounds discipline, and the scalar encodings live here so
/// both protocols run one implementation — the one the fuzz harnesses
/// (fuzz_serve_frame, fuzz_farm_frame) exercise.

void PutU8(std::string* out, std::uint8_t v);
void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
/// IEEE-754 bit pattern, little-endian: a lossless round-trip for every
/// double including NaN payloads.
void PutF64(std::string* out, double v);
/// u32 byte count followed by the raw bytes.
void PutString(std::string* out, std::string_view s);

/// A bounds-checked little-endian reader over a frame payload. Every
/// Read* returns false instead of reading past the end; decoders finish
/// with AtEnd() to reject trailing bytes. After a failed read the
/// reader position is unspecified — callers must bail out immediately.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(std::uint8_t* out);
  bool ReadU32(std::uint32_t* out);
  bool ReadU64(std::uint64_t* out);
  bool ReadF64(double* out);
  /// Counterpart of PutString. The view aliases the payload buffer.
  bool ReadString(std::string_view* out);

  [[nodiscard]] bool AtEnd() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

enum class FrameExtract {
  kComplete,
  kNeedMore,
  kError,
};

/// Cuts the first complete frame off `buffer`. kComplete fills
/// *consumed (4 + length), *opcode, and *payload (a view into
/// `buffer`); kNeedMore means the buffer holds only a frame prefix;
/// kError fills *error (zero length, or length above 1 + max_payload)
/// and the connection must close — the stream cannot resynchronize.
FrameExtract ExtractFrame(std::string_view buffer, std::size_t max_payload,
                          std::size_t* consumed, std::uint8_t* opcode,
                          std::string_view* payload, std::string* error);

/// Appends one frame (length prefix, opcode, payload) to *out.
void AppendFrame(std::string* out, std::uint8_t opcode,
                 std::string_view payload);

}  // namespace wire
}  // namespace farmer

#endif  // FARMER_UTIL_WIRE_H_
