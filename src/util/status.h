#ifndef FARMER_UTIL_STATUS_H_
#define FARMER_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace farmer {

/// Lightweight error carrier for fallible operations (I/O, parsing).
///
/// The library does not use exceptions; functions that can fail return a
/// Status (or a value + Status pair) in the style of Arrow / RocksDB.
///
/// The class itself is [[nodiscard]]: any function returning a Status by
/// value makes callers handle it — silently dropping an error is a
/// compile warning (an error under -Werror / CI). Deliberately ignoring a
/// Status requires a visible `(void)` cast at the call site.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == Code::kInvalidArgument;
  }
  [[nodiscard]] bool IsIoError() const { return code_ == Code::kIoError; }
  [[nodiscard]] bool IsNotFound() const { return code_ == Code::kNotFound; }

  /// Human-readable message; empty on success.
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + message_;
      case Code::kIoError:
        return "IoError: " + message_;
      case Code::kNotFound:
        return "NotFound: " + message_;
    }
    return "Unknown";
  }

 private:
  enum class Code { kOk, kInvalidArgument, kIoError, kNotFound };

  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace farmer

#endif  // FARMER_UTIL_STATUS_H_
