#ifndef FARMER_UTIL_STATUS_H_
#define FARMER_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace farmer {

/// Lightweight error carrier for fallible operations (I/O, parsing).
///
/// The library does not use exceptions; functions that can fail return a
/// Status (or a value + Status pair) in the style of Arrow / RocksDB.
///
/// The class itself is [[nodiscard]]: any function returning a Status by
/// value makes callers handle it — silently dropping an error is a
/// compile warning (an error under -Werror / CI). Deliberately ignoring a
/// Status requires a visible `(void)` cast at the call site.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == Code::kInvalidArgument;
  }
  [[nodiscard]] bool IsIoError() const { return code_ == Code::kIoError; }
  [[nodiscard]] bool IsNotFound() const { return code_ == Code::kNotFound; }

  /// Human-readable message; empty on success.
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + message_;
      case Code::kIoError:
        return "IoError: " + message_;
      case Code::kNotFound:
        return "NotFound: " + message_;
    }
    return "Unknown";
  }

 private:
  enum class Code { kOk, kInvalidArgument, kIoError, kNotFound };

  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// A value or the Status explaining why there is none — the
/// value-returning counterpart of Status, so fallible factories return
/// one object instead of an out-parameter + Status pair.
///
/// [[nodiscard]] like Status: dropping a StatusOr on the floor drops an
/// error with it. Accessing value() without checking ok() first on an
/// error state aborts with the status on stderr (this header cannot use
/// FARMER_CHECK: check.h includes status.h).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from T and from Status, so `return value;` and
  /// `return Status::IoError(...)` both work in a StatusOr function.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      Fail("StatusOr constructed from an OK Status without a value");
    }
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Precondition: ok(). Violations abort (no exceptions in this
  /// library), so an unchecked error cannot masquerade as a value.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      Fail(("StatusOr::value() on an error: " + status_.ToString()).c_str());
    }
  }

  [[noreturn]] static void Fail(const char* what) {
    std::fprintf(stderr, "FATAL: %s\n", what);
    std::fflush(stderr);
    std::abort();
  }

  Status status_;  // Ok iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace farmer

#endif  // FARMER_UTIL_STATUS_H_
