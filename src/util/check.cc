#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace farmer {

namespace {

void DefaultCheckFailureHandler(const char* file, int line,
                                const std::string& message) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<CheckFailureHandler> g_handler{&DefaultCheckFailureHandler};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  if (handler == nullptr) handler = &DefaultCheckFailureHandler;
  return g_handler.exchange(handler);
}

namespace check_internal {

CheckFailure::CheckFailure(const char* file, int line, const char* description)
    : file_(file), line_(line) {
  stream_ << description << ' ';
}

CheckFailure::~CheckFailure() noexcept(false) {
  CheckFailureHandler handler = g_handler.load();
  handler(file_, line_, stream_.str());
  // A contract violation must not resume the violating function: if the
  // handler neither threw nor terminated, terminate here.
  std::abort();
}

}  // namespace check_internal
}  // namespace farmer
