#ifndef FARMER_UTIL_BITSET_REF_H_
#define FARMER_UTIL_BITSET_REF_H_

#include <algorithm>
#include <cstddef>

#include "util/bitset.h"

namespace farmer {
namespace ref {

/// Scalar reference implementations of the word-parallel Bitset kernels.
///
/// Each function recomputes one kernel bit by bit through the public
/// Test()/size() interface only — no word-level shortcuts — so it serves
/// as an independent oracle. MinerOptions::verify_invariants cross-checks
/// every kernel call in the mining hot path against these during real
/// runs, and bitset_test fuzzes the pair on random inputs. Keep these
/// boring and obviously correct; never optimize them.

/// |a ∩ b| over the common prefix of the two sizes.
inline std::size_t AndCount(const Bitset& a, const Bitset& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.Test(i) && b.Test(i)) ++count;
  }
  return count;
}

/// |a ∩ b| restricted to positions < pos_limit.
inline std::size_t AndCountPrefix(const Bitset& a, const Bitset& b,
                                  std::size_t pos_limit) {
  const std::size_t n =
      std::min(pos_limit, std::min(a.size(), b.size()));
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.Test(i) && b.Test(i)) ++count;
  }
  return count;
}

/// Number of set bits at positions < pos_limit.
inline std::size_t CountPrefix(const Bitset& a, std::size_t pos_limit) {
  const std::size_t n = std::min(pos_limit, a.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.Test(i)) ++count;
  }
  return count;
}

/// True when a ∩ sets[0] ∩ … ∩ sets[count-1] is non-empty.
inline bool IntersectsAllOf(const Bitset& a, const Bitset* const* sets,
                            std::size_t count) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a.Test(i)) continue;
    bool in_all = true;
    for (std::size_t s = 0; s < count; ++s) {
      if (i >= sets[s]->size() || !sets[s]->Test(i)) {
        in_all = false;
        break;
      }
    }
    if (in_all) return true;
  }
  return false;
}

/// a & b, rebuilt bit by bit.
inline Bitset AndInto(const Bitset& a, const Bitset& b) {
  Bitset out(a.size());
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.Test(i) && b.Test(i)) out.Set(i);
  }
  return out;
}

/// a & ~b, rebuilt bit by bit.
inline Bitset AndNotInto(const Bitset& a, const Bitset& b) {
  Bitset out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) && (i >= b.size() || !b.Test(i))) out.Set(i);
  }
  return out;
}

/// base | (a & b), rebuilt bit by bit.
inline Bitset OrAnd(const Bitset& base, const Bitset& a, const Bitset& b) {
  Bitset out(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base.Test(i) || (a.Test(i) && b.Test(i))) out.Set(i);
  }
  return out;
}

}  // namespace ref
}  // namespace farmer

#endif  // FARMER_UTIL_BITSET_REF_H_
