#ifndef FARMER_UTIL_NET_H_
#define FARMER_UTIL_NET_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace farmer {
namespace net {

/// Shared POSIX socket helpers for the serve and farm network layers
/// and their CLI clients. Everything here is IPv4 + numeric addresses
/// (inet_pton): the servers bind loopback or explicit interface
/// addresses, never hostnames, and keeping resolution out of the
/// library keeps every call non-blocking and deterministic.

/// Thread-safe errno rendering. std::strerror may hand back a shared
/// static buffer (clang-tidy concurrency-mt-unsafe), so this goes
/// through strerror_r, absorbing both the XSI and GNU flavors.
std::string ErrnoString(int err);

/// Puts `fd` into non-blocking mode. False when fcntl fails.
bool SetNonBlocking(int fd);

/// Disables Nagle's algorithm (TCP_NODELAY). Best-effort: a failure
/// only costs latency, so the error is ignored.
void SetTcpNoDelay(int fd);

/// Bounds blocking sends with SO_SNDTIMEO so farewell writes to a
/// stalled peer give up instead of wedging the caller.
void SetSendTimeoutMs(int fd, int timeout_ms);

/// Creates a bound, listening TCP socket on host:port (SO_REUSEADDR).
/// On success fills *out_fd and *out_port, the latter resolving
/// ephemeral (port 0) binds via getsockname.
Status OpenListener(const std::string& host, int port, int* out_fd,
                    int* out_port);

/// Blocking connect to host:port with an overall timeout
/// (timeout_seconds <= 0 blocks indefinitely). On success the socket
/// is back in blocking mode and *out_fd owns it.
Status ConnectToHost(const std::string& host, int port,
                     double timeout_seconds, int* out_fd);

/// Writes all of `data`, retrying on EINTR, MSG_NOSIGNAL so a dead
/// peer surfaces as an error instead of SIGPIPE. False on any other
/// send failure (including an SO_SNDTIMEO expiry).
bool SendAll(int fd, std::string_view data);

/// Minimal HTTP/1.0 response — enough for curl and a Prometheus
/// scraper, always Connection: close.
std::string HttpResponse(const char* status_line, const char* content_type,
                         std::string_view body);

}  // namespace net
}  // namespace farmer

#endif  // FARMER_UTIL_NET_H_
