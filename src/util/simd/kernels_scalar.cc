// Scalar baseline kernel table. Built with the project's default flags —
// no -m options — so it runs on any CPU the binary itself runs on and
// stays the oracle-adjacent floor every vector tier is benchmarked and
// cross-checked against.

#include <cstddef>
#include <cstdint>

#include "util/simd/simd.h"

namespace farmer {
namespace simd {
namespace {

#include "util/simd/kernels_portable.inc"

}  // namespace

const KernelTable& ScalarKernels() {
  static constexpr KernelTable kTable = {
      Level::kScalar,     "scalar",
      PortableCount,      PortableAndCount,
      PortableIntersects, PortableIsSubsetOf,
      PortableNone,       PortableAndInto,
      PortableAndIntoAny, PortableAndNotInto,
      PortableOrAnd,      PortableAndInplace,
      PortableOrInplace,  PortableAndNotInplace,
  };
  return kTable;
}

}  // namespace simd
}  // namespace farmer
