#include "util/simd/simd.h"

#include <atomic>
#include <cstdlib>

#include "util/check.h"

namespace farmer {
namespace simd {
namespace {

// Host CPUID feature probes. __builtin_cpu_supports resolves against
// the running processor (GCC and Clang both route it through
// __builtin_cpu_init), so a binary carrying AVX-512 code still selects
// correctly on an AVX2-only machine.
bool HostHasSse42() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt");
#else
  return false;
#endif
}

bool HostHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
#else
  return false;
#endif
}

bool HostHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("popcnt");
#else
  return false;
#endif
}

// The active table. Resolved on first Active() call (or first explicit
// ForceLevel/Configure); afterwards every kernel dispatch is one
// relaxed load of this pointer.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable& RawTable(Level level) {
  switch (level) {
    case Level::kScalar: return ScalarKernels();
    case Level::kSse42: return Sse42Kernels();
    case Level::kAvx2: return Avx2Kernels();
    case Level::kAvx512: return Avx512Kernels();
  }
  return ScalarKernels();
}

const KernelTable* ResolveFromEnvironment() {
  const char* env = std::getenv("FARMER_SIMD");
  if (env == nullptr || env[0] == '\0' ||
      std::string(env) == std::string("auto")) {
    return &TableFor(DetectBestLevel());
  }
  // A forced level must never silently fall back: misspellings and
  // levels this binary/host cannot run are fatal, not ignored.
  Level level = Level::kScalar;
  FARMER_CHECK(ParseLevel(env, &level))
      << "FARMER_SIMD='" << env
      << "' is not auto|scalar|sse42|avx2|avx512";
  FARMER_CHECK(LevelSupported(level))
      << "FARMER_SIMD=" << env
      << " is not usable here (supported: " << SupportedLevelsCsv() << ")";
  return &TableFor(level);
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse42: return "sse42";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "scalar";
}

bool ParseLevel(const std::string& text, Level* out) {
  for (int i = 0; i < kNumLevels; ++i) {
    const Level level = static_cast<Level>(i);
    if (text == LevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

bool LevelCompiled(Level level) {
  // A tier whose translation unit was built without its -m flags
  // aliases the scalar table, so its level field gives it away.
  return RawTable(level).level == level;
}

bool LevelSupported(Level level) {
  if (!LevelCompiled(level)) return false;
  switch (level) {
    case Level::kScalar: return true;
    case Level::kSse42: return HostHasSse42();
    case Level::kAvx2: return HostHasAvx2();
    case Level::kAvx512: return HostHasAvx512();
  }
  return false;
}

Level DetectBestLevel() {
  for (int i = kNumLevels - 1; i >= 0; --i) {
    const Level level = static_cast<Level>(i);
    if (LevelSupported(level)) return level;
  }
  return Level::kScalar;
}

const KernelTable& TableFor(Level level) {
  FARMER_CHECK(LevelSupported(level))
      << "SIMD level " << LevelName(level)
      << " is not usable here (supported: " << SupportedLevelsCsv() << ")";
  return RawTable(level);
}

std::string SupportedLevelsCsv() {
  std::string out;
  for (int i = 0; i < kNumLevels; ++i) {
    const Level level = static_cast<Level>(i);
    if (!LevelSupported(level)) continue;
    if (!out.empty()) out += ',';
    out += LevelName(level);
  }
  return out;
}

const KernelTable& Active() {
  const KernelTable* table = g_active.load(std::memory_order_relaxed);
  if (FARMER_PREDICT_FALSE(table == nullptr)) {
    // First use; function-local static gives once-only env resolution
    // even under concurrent first calls.
    static const KernelTable* resolved = [] {
      const KernelTable* t = ResolveFromEnvironment();
      const KernelTable* expected = nullptr;
      g_active.compare_exchange_strong(expected, t,
                                       std::memory_order_relaxed);
      return t;
    }();
    (void)resolved;
    table = g_active.load(std::memory_order_relaxed);
  }
  return *table;
}

Level ActiveLevel() { return Active().level; }

bool ForceLevel(Level level) {
  if (!LevelSupported(level)) return false;
  g_active.store(&RawTable(level), std::memory_order_relaxed);
  return true;
}

bool Configure(const std::string& spec) {
  if (spec.empty() || spec == "auto") {
    g_active.store(&RawTable(DetectBestLevel()), std::memory_order_relaxed);
    return true;
  }
  Level level = Level::kScalar;
  if (!ParseLevel(spec, &level)) return false;
  return ForceLevel(level);
}

}  // namespace simd
}  // namespace farmer
