// AVX-512 kernel table: 512-bit lanes, eight bitset words per step,
// compiled with -mavx512f -mavx512bw -mavx512vl -mpopcnt (per-file; see
// src/util/CMakeLists.txt).
//
// Popcount is the same Muła nibble-LUT as the AVX2 unit, widened: the
// F+BW baseline runs on every AVX-512 server core, unlike VPOPCNTDQ
// (Ice Lake+), which would halve the instruction count but SIGILL on
// Skylake-X — runtime dispatch selects tiers, not instructions, so the
// tier must be uniform. Predicates use VPTESTMQ mask compares (F), which
// also gives the fused any-test in AndIntoAny for free. Tails fall back
// to the portable loops compiled under these flags.

#include <cstddef>
#include <cstdint>

#include "util/simd/simd.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

// GCC's AVX-512 headers build VPANDN etc. on _mm512_undefined_epi32,
// which -Wmaybe-uninitialized flags through inlining (GCC PR105593).
// Header-internal false positive, not this file's code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

namespace farmer {
namespace simd {
namespace {

#include "util/simd/kernels_portable.inc"

constexpr std::size_t kStep = 8;  // 64-bit words per 512-bit vector.

inline __m512i Popcount512(__m512i v) {
  const __m512i lut = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low_mask);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
  const __m512i counts = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                         _mm512_shuffle_epi8(lut, hi));
  return _mm512_sad_epu8(counts, _mm512_setzero_si512());
}

std::size_t Count(const std::uint64_t* w, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    acc = _mm512_add_epi64(acc, Popcount512(_mm512_loadu_si512(w + i)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc)) +
         PortableCount(w + i, n - i);
}

std::size_t AndCount(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc, Popcount512(_mm512_and_si512(va, vb)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc)) +
         PortableAndCount(a + i, b + i, n - i);
}

bool Intersects(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(va, vb) != 0) return true;
  }
  return PortableIntersects(a + i, b + i, n - i);
}

bool IsSubsetOf(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    // VPANDNQ: ~vb & va — any surviving bit breaks the subset.
    const __m512i stray = _mm512_andnot_si512(vb, va);
    if (_mm512_test_epi64_mask(stray, stray) != 0) return false;
  }
  return PortableIsSubsetOf(a + i, b + i, n - i);
}

bool None(const std::uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i v = _mm512_loadu_si512(w + i);
    if (_mm512_test_epi64_mask(v, v) != 0) return false;
  }
  return PortableNone(w + i, n - i);
}

void AndInto(const std::uint64_t* a, const std::uint64_t* b,
             std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(out + i, _mm512_and_si512(va, vb));
  }
  PortableAndInto(a + i, b + i, out + i, n - i);
}

std::uint64_t AndIntoAny(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out, std::size_t n) {
  __mmask8 any = 0;
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i v = _mm512_and_si512(va, vb);
    _mm512_storeu_si512(out + i, v);
    any |= _mm512_test_epi64_mask(v, v);
  }
  std::uint64_t result = any != 0 ? 1 : 0;
  result |= PortableAndIntoAny(a + i, b + i, out + i, n - i);
  return result;
}

void AndNotInto(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(out + i, _mm512_andnot_si512(vb, va));
  }
  PortableAndNotInto(a + i, b + i, out + i, n - i);
}

void OrAnd(std::uint64_t* dst, const std::uint64_t* a,
           const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i vd = _mm512_loadu_si512(dst + i);
    // VPTERNLOGQ 0xF8 = d | (a & b) in one op.
    _mm512_storeu_si512(dst + i, _mm512_ternarylogic_epi64(vd, va, vb, 0xF8));
  }
  PortableOrAnd(dst + i, a + i, b + i, n - i);
}

void AndInplace(std::uint64_t* dst, const std::uint64_t* src,
                std::size_t n) {
  AndInto(dst, src, dst, n);
}

void OrInplace(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m512i vd = _mm512_loadu_si512(dst + i);
    const __m512i vs = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(vd, vs));
  }
  PortableOrInplace(dst + i, src + i, n - i);
}

void AndNotInplace(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  AndNotInto(dst, src, dst, n);
}

}  // namespace

const KernelTable& Avx512Kernels() {
  static constexpr KernelTable kTable = {
      Level::kAvx512, "avx512",     Count,      AndCount,
      Intersects,     IsSubsetOf,   None,       AndInto,
      AndIntoAny,     AndNotInto,   OrAnd,      AndInplace,
      OrInplace,      AndNotInplace,
  };
  return kTable;
}

}  // namespace simd
}  // namespace farmer

#else  // !AVX-512 F+BW+VL

// Built without the tier's flags (unsupported toolchain or non-x86
// target): alias scalar so the symbol links; the dispatcher sees the
// mismatched table level and reports the tier as not compiled.
namespace farmer {
namespace simd {
const KernelTable& Avx512Kernels() { return ScalarKernels(); }
}  // namespace simd
}  // namespace farmer

#endif  // AVX-512 F+BW+VL
