// AVX2 kernel table: 256-bit lanes, four bitset words per step,
// compiled with -mavx2 -mpopcnt (per-file; see src/util/CMakeLists.txt).
//
// Popcount uses the Muła nibble-LUT: split each byte into nibbles,
// VPSHUFB both through a 16-entry bit-count table, then VPSADBW folds
// the per-byte counts into one 64-bit counter per lane — no cross-lane
// work until the final reduction. Emptiness-style predicates use
// VPTEST. Tails shorter than a vector fall back to the portable loops,
// compiled here under the same flags (hardware POPCNT).
//
// Loads/stores are unaligned ops: Bitset's backing store is 64-byte
// aligned anyway (util/aligned.h), and VMOVDQU on an aligned address
// costs the same as VMOVDQA on every AVX2-era core.

#include <cstddef>
#include <cstdint>

#include "util/simd/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

// GCC's AVX headers build several intrinsics on undefined-value
// helpers, which -Wmaybe-uninitialized flags through inlining (GCC
// PR105593). Header-internal false positive, not this file's code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

namespace farmer {
namespace simd {
namespace {

#include "util/simd/kernels_portable.inc"

constexpr std::size_t kStep = 4;  // 64-bit words per 256-bit vector.

inline __m256i Popcount256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline std::size_t Reduce64x4(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(sum)) +
      static_cast<std::uint64_t>(
          _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum))));
}

std::size_t Count(const std::uint64_t* w, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    acc = _mm256_add_epi64(
        acc, Popcount256(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(w + i))));
  }
  return Reduce64x4(acc) + PortableCount(w + i, n - i);
}

std::size_t AndCount(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  return Reduce64x4(acc) + PortableAndCount(a + i, b + i, n - i);
}

bool Intersects(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  return PortableIntersects(a + i, b + i, n - i);
}

bool IsSubsetOf(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // VPTEST sets CF when (~vb & va) == 0 — exactly the subset test.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
  return PortableIsSubsetOf(a + i, b + i, n - i);
}

bool None(const std::uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) return false;
  }
  return PortableNone(w + i, n - i);
}

void AndInto(const std::uint64_t* a, const std::uint64_t* b,
             std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  PortableAndInto(a + i, b + i, out + i, n - i);
}

std::uint64_t AndIntoAny(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out, std::size_t n) {
  __m256i vany = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    vany = _mm256_or_si256(vany, v);
  }
  std::uint64_t any = _mm256_testz_si256(vany, vany) ? 0 : 1;
  any |= PortableAndIntoAny(a + i, b + i, out + i, n - i);
  return any;
}

void AndNotInto(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // VPANDN computes ~first & second, so pass b first.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_andnot_si256(vb, va));
  }
  PortableAndNotInto(a + i, b + i, out + i, n - i);
}

void OrAnd(std::uint64_t* dst, const std::uint64_t* a,
           const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(vd, _mm256_and_si256(va, vb)));
  }
  PortableOrAnd(dst + i, a + i, b + i, n - i);
}

void AndInplace(std::uint64_t* dst, const std::uint64_t* src,
                std::size_t n) {
  AndInto(dst, src, dst, n);
}

void OrInplace(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(vd, vs));
  }
  PortableOrInplace(dst + i, src + i, n - i);
}

void AndNotInplace(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  AndNotInto(dst, src, dst, n);
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static constexpr KernelTable kTable = {
      Level::kAvx2, "avx2",       Count,      AndCount,
      Intersects,   IsSubsetOf,   None,       AndInto,
      AndIntoAny,   AndNotInto,   OrAnd,      AndInplace,
      OrInplace,    AndNotInplace,
  };
  return kTable;
}

}  // namespace simd
}  // namespace farmer

#else  // !defined(__AVX2__)

// The build configured this file without AVX2 flags (unsupported
// toolchain or non-x86 target): alias the tier to scalar so the symbol
// still links; simd.cc reports it as not compiled.
namespace farmer {
namespace simd {
const KernelTable& Avx2Kernels() { return ScalarKernels(); }
}  // namespace simd
}  // namespace farmer

#endif  // defined(__AVX2__)
