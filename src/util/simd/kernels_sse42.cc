// SSE4.2/POPCNT kernel table: the portable loops recompiled with
// -msse4.2 -mpopcnt (see src/util/CMakeLists.txt). The win over the
// scalar unit is entirely in code generation — one hardware POPCNT per
// word instead of libgcc's __popcountdi2 table walk, plus 128-bit
// moves for the combine loops — so the source is the shared .inc and
// this file adds nothing by hand.
//
// When the toolchain rejects the flags the build drops this file and
// simd.cc aliases the tier to the scalar table (LevelCompiled == false).

#include <cstddef>
#include <cstdint>

#include "util/simd/simd.h"

#if defined(__POPCNT__)

namespace farmer {
namespace simd {
namespace {

#include "util/simd/kernels_portable.inc"

}  // namespace

const KernelTable& Sse42Kernels() {
  static constexpr KernelTable kTable = {
      Level::kSse42,      "sse42",
      PortableCount,      PortableAndCount,
      PortableIntersects, PortableIsSubsetOf,
      PortableNone,       PortableAndInto,
      PortableAndIntoAny, PortableAndNotInto,
      PortableOrAnd,      PortableAndInplace,
      PortableOrInplace,  PortableAndNotInplace,
  };
  return kTable;
}

}  // namespace simd
}  // namespace farmer

#else  // !defined(__POPCNT__)

// Built without the tier's flags (unsupported toolchain or non-x86
// target): alias scalar so the symbol links; the dispatcher sees the
// mismatched table level and reports the tier as not compiled.
namespace farmer {
namespace simd {
const KernelTable& Sse42Kernels() { return ScalarKernels(); }
}  // namespace simd
}  // namespace farmer

#endif  // defined(__POPCNT__)
