#ifndef FARMER_UTIL_SIMD_SIMD_H_
#define FARMER_UTIL_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace farmer {
namespace simd {

/// The instruction-set tiers the word-kernel dispatcher knows about,
/// widest last. A tier is *usable* only when it was compiled into the
/// binary (the toolchain accepted its flags) and the host CPU reports
/// the matching CPUID features.
enum class Level : int {
  kScalar = 0,  // Portable C++, no ISA assumptions.
  kSse42 = 1,   // Hardware POPCNT (the SSE4.2 feature bundle).
  kAvx2 = 2,    // 256-bit lanes, nibble-LUT popcount.
  kAvx512 = 3,  // 512-bit lanes (F+BW+VL), nibble-LUT popcount.
};

inline constexpr int kNumLevels = 4;

/// One resolved set of word-array kernels. Bitset calls through the
/// process-wide active table (Active()) for every word-parallel
/// operation, so selecting a level once at startup retargets mining,
/// serving, and post-mining counting together.
///
/// All pointers take word counts, not bit counts; callers own tail-bit
/// masking. `out` may alias `a` or `b` exactly (the miner's in-place
/// intersection scratch); partial overlap is undefined.
struct KernelTable {
  Level level;
  const char* name;

  /// Σ popcount(w[i]).
  std::size_t (*count)(const std::uint64_t* w, std::size_t n);
  /// Σ popcount(a[i] & b[i]).
  std::size_t (*and_count)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n);
  /// Any (a[i] & b[i]) != 0.
  bool (*intersects)(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n);
  /// All (a[i] & ~b[i]) == 0.
  bool (*is_subset_of)(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n);
  /// All w[i] == 0.
  bool (*none)(const std::uint64_t* w, std::size_t n);
  /// out[i] = a[i] & b[i].
  void (*and_into)(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, std::size_t n);
  /// out[i] = a[i] & b[i]; returns the OR of all out words, so the
  /// caller gets the emptiness test fused into the intersection pass
  /// (the back scan's early exit).
  std::uint64_t (*and_into_any)(const std::uint64_t* a,
                                const std::uint64_t* b, std::uint64_t* out,
                                std::size_t n);
  /// out[i] = a[i] & ~b[i].
  void (*and_not_into)(const std::uint64_t* a, const std::uint64_t* b,
                       std::uint64_t* out, std::size_t n);
  /// dst[i] |= a[i] & b[i].
  void (*or_and)(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n);
  /// dst[i] &= src[i].
  void (*and_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n);
  /// dst[i] |= src[i].
  void (*or_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n);
  /// dst[i] &= ~src[i].
  void (*and_not_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n);
};

/// Per-tier tables. Each lives in its own translation unit compiled
/// with exactly that tier's -m flags (see src/util/CMakeLists.txt);
/// tiers the toolchain could not compile alias the scalar table and
/// report LevelCompiled() == false.
const KernelTable& ScalarKernels();
const KernelTable& Sse42Kernels();
const KernelTable& Avx2Kernels();
const KernelTable& Avx512Kernels();

/// "scalar" / "sse42" / "avx2" / "avx512".
const char* LevelName(Level level);

/// Parses a LevelName (not "auto"). Returns false on unknown text.
bool ParseLevel(const std::string& text, Level* out);

/// True when the tier's translation unit was built with its vector
/// flags (always true for kScalar).
bool LevelCompiled(Level level);

/// True when LevelCompiled(level) and the host CPU reports the CPUID
/// features the tier's code emits.
bool LevelSupported(Level level);

/// The widest supported level on this host/binary.
Level DetectBestLevel();

/// The table for `level`; fatal-checks LevelSupported(level).
const KernelTable& TableFor(Level level);

/// Comma-separated LevelNames of every supported level, narrowest
/// first — for error messages and the CLI's `simd` report.
std::string SupportedLevelsCsv();

/// The process-wide active table. First use resolves it: the
/// FARMER_SIMD environment variable when set ("auto" or a LevelName;
/// anything unparseable or unsupported on this host fatal-checks —
/// a forced level must never silently fall back), otherwise
/// DetectBestLevel(). Subsequent calls are one relaxed atomic load.
const KernelTable& Active();

/// Level of the active table.
Level ActiveLevel();

/// Points Active() at `level`'s table. Returns false (and changes
/// nothing) when the level is not supported here. Process-global and
/// not synchronized against in-flight kernel calls: switch levels only
/// at startup or between runs (tests, benches), never mid-mine.
bool ForceLevel(Level level);

/// ForceLevel by name; "auto" (or "") re-runs DetectBestLevel().
/// Returns false on unknown names and unsupported levels alike.
bool Configure(const std::string& spec);

}  // namespace simd
}  // namespace farmer

#endif  // FARMER_UTIL_SIMD_SIMD_H_
