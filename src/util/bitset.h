#ifndef FARMER_UTIL_BITSET_H_
#define FARMER_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/aligned.h"

namespace farmer {

/// A dynamically sized bit set.
///
/// Used throughout the miners for row-support sets (a few hundred bits) and
/// for item masks local to an antecedent in MineLB. The interface mirrors
/// `std::bitset` where practical but supports run-time sizing and the set
/// algebra the miners need (subset/superset tests, intersection counts,
/// iteration over set bits).
class Bitset {
 public:
  /// Backing storage: 64-bit words on 64-byte boundaries, so the widest
  /// SIMD kernels (src/util/simd/) never issue a load that splits a
  /// cache line. Same element layout as std::vector<std::uint64_t> —
  /// only the allocation's starting address differs.
  using WordVector =
      std::vector<std::uint64_t, AlignedAllocator<std::uint64_t, 64>>;

  Bitset() = default;

  /// Creates a bitset with `num_bits` bits, all clear.
  explicit Bitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  Bitset(const Bitset&) = default;
  Bitset& operator=(const Bitset&) = default;
  Bitset(Bitset&&) = default;
  Bitset& operator=(Bitset&&) = default;

  /// Number of bits this set can hold.
  std::size_t size() const { return num_bits_; }

  /// Grows (or shrinks) to `num_bits`; new bits are clear.
  void Resize(std::size_t num_bits);

  /// Sets bit `pos` (must be < size()).
  void Set(std::size_t pos) { words_[pos >> 6] |= (kOne << (pos & 63)); }

  /// Clears bit `pos` (must be < size()).
  void Reset(std::size_t pos) { words_[pos >> 6] &= ~(kOne << (pos & 63)); }

  /// Clears every bit.
  void ResetAll();

  /// Clears every bit at positions < `pos_limit` (clamped to size()).
  /// The miner uses this to derive a spawned subtree's candidate mask
  /// ("rows strictly after r") from a shared parent snapshot without an
  /// extra scratch bitset.
  void ResetPrefix(std::size_t pos_limit);

  /// Sets every bit in [0, size()).
  void SetAll();

  /// Returns bit `pos` (must be < size()).
  [[nodiscard]] bool Test(std::size_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t Count() const;

  /// Number of set bits at positions < `pos_limit` (clamped to size()).
  [[nodiscard]] std::size_t CountPrefix(std::size_t pos_limit) const;

  /// True when no bit is set.
  [[nodiscard]] bool None() const;

  /// True when at least one bit is set.
  [[nodiscard]] bool Any() const { return !None(); }

  /// True when every bit of *this is also set in `other`.
  /// Requires other.size() == size().
  [[nodiscard]] bool IsSubsetOf(const Bitset& other) const;

  /// True when IsSubsetOf(other) and the sets differ.
  [[nodiscard]] bool IsProperSubsetOf(const Bitset& other) const {
    return IsSubsetOf(other) && *this != other;
  }

  /// True when the two sets share at least one bit.
  [[nodiscard]] bool Intersects(const Bitset& other) const;

  /// Number of bits set in both *this and `other`.
  [[nodiscard]] std::size_t IntersectCount(const Bitset& other) const;

  /// Synonym for IntersectCount, named for the miner's conditional-table
  /// kernels: |*this ∩ other| in one word-parallel pass.
  [[nodiscard]] std::size_t AndCount(const Bitset& other) const {
    return IntersectCount(other);
  }

  /// |*this ∩ other| restricted to positions < `pos_limit`. The FARMER
  /// miner uses this to count positive-class rows (a prefix of the row
  /// order) inside a tuple's candidate set without materializing the
  /// intersection.
  [[nodiscard]] std::size_t AndCountPrefix(const Bitset& other,
                                           std::size_t pos_limit) const;

  /// True when some bit of *this is set in every bitset of
  /// `sets[0..count)` — i.e. *this ∩ sets[0] ∩ … ∩ sets[count-1] is
  /// non-empty. `scratch` is borrowed for the running intersection (its
  /// contents are clobbered); the loop exits early once the intersection
  /// empties. With count == 0 this reduces to Any().
  [[nodiscard]] bool IntersectsAllOf(const Bitset* const* sets,
                                     std::size_t count,
                                     Bitset* scratch) const;

  /// out = a & b without reallocating out's storage when capacities allow
  /// (the borrowed-buffer variant of operator&). a and b must be the same
  /// size.
  static void AndInto(const Bitset& a, const Bitset& b, Bitset* out);

  /// out = a & ~b, same storage-reuse contract as AndInto.
  static void AndNotInto(const Bitset& a, const Bitset& b, Bitset* out);

  /// *this |= (a & b) in a single word-parallel pass; a and b must be the
  /// same size as *this.
  void OrAnd(const Bitset& a, const Bitset& b);

  /// In-place union / intersection / difference.
  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);
  Bitset& operator-=(const Bitset& other);

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const Bitset& a, const Bitset& b) { return !(a == b); }

  /// Index of the first set bit, or size() when empty.
  [[nodiscard]] std::size_t FindFirst() const;

  /// Index of the first set bit strictly after `pos`, or size() when none.
  [[nodiscard]] std::size_t FindNext(std::size_t pos) const;

  /// Calls `fn(pos)` for every set bit in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Indices of the set bits, ascending.
  std::vector<std::size_t> ToVector() const;

  /// The backing 64-bit words, bit `pos` at word `pos / 64` bit
  /// `pos % 64`, tail bits clear. For serializers (the snapshot store's
  /// compact row-set encoding); everything else should go through the
  /// set-algebra interface.
  const WordVector& words() const { return words_; }

  /// "{1,4,7}"-style rendering, for test failure messages.
  std::string ToString() const;

  /// Stable hash of the contents (FNV-1a over the words).
  [[nodiscard]] std::size_t Hash() const;

  /// Contract check of the representation invariants: the word vector is
  /// exactly ⌈size()/64⌉ long and every bit at positions >= size() is
  /// clear (the kernels' popcounts and subset tests silently assume a
  /// zero tail). Fails a FARMER_CHECK on violation. O(words).
  void CheckInvariants() const;

 private:
  static constexpr std::uint64_t kOne = 1;

  // Clears bits at positions >= num_bits_ in the last word.
  void TrimTail();

  std::size_t num_bits_ = 0;
  WordVector words_;
};

/// Hash functor so Bitset can key unordered containers.
struct BitsetHash {
  std::size_t operator()(const Bitset& b) const { return b.Hash(); }
};

}  // namespace farmer

#endif  // FARMER_UTIL_BITSET_H_
