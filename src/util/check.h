#ifndef FARMER_UTIL_CHECK_H_
#define FARMER_UTIL_CHECK_H_

#include <sstream>
#include <string>

#include "util/status.h"

/// Contract-checking macros for the FARMER library.
///
/// These replace the bare asserts previously scattered through `src/`:
/// unlike the standard macro, the
/// always-on variants survive NDEBUG builds (the default RelWithDebInfo
/// configuration), carry streamed context messages, and route through a
/// process-wide failure handler that tests can hook.
///
///   FARMER_CHECK(n > 0) << "rows=" << rows;   // always on; keep it cheap
///   FARMER_DCHECK(std::is_sorted(b, e));      // debug builds only
///   FARMER_CHECK_OK(LoadTransactions(p, &d)); // Status must be ok()
///
/// A failed check formats "file:line: CHECK failed: <cond> <message>" and
/// invokes the installed CheckFailureHandler. The default handler writes
/// the message to stderr and aborts. Tests install a throwing handler via
/// ScopedCheckFailureHandler to assert that contracts fire; if a custom
/// handler returns instead of throwing, the process still aborts — a
/// violated contract never resumes the violating function.

namespace farmer {

/// Handler invoked with the fully formatted message of a failed check.
/// Must either throw or not return (the caller aborts if it does return).
using CheckFailureHandler = void (*)(const char* file, int line,
                                     const std::string& message);

/// Installs `handler` process-wide and returns the previous handler.
/// Passing nullptr restores the default abort handler.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

/// RAII helper for tests: installs a handler on construction and restores
/// the previous one on destruction.
class ScopedCheckFailureHandler {
 public:
  explicit ScopedCheckFailureHandler(CheckFailureHandler handler)
      : previous_(SetCheckFailureHandler(handler)) {}
  ~ScopedCheckFailureHandler() { SetCheckFailureHandler(previous_); }

  ScopedCheckFailureHandler(const ScopedCheckFailureHandler&) = delete;
  ScopedCheckFailureHandler& operator=(const ScopedCheckFailureHandler&) =
      delete;

 private:
  CheckFailureHandler previous_;
};

namespace check_internal {

/// Accumulates the streamed message of one failing check and fires the
/// failure handler when the full expression ends. Destruction only happens
/// on the failure path, so the destructor is allowed to throw (test
/// handlers do) — hence noexcept(false).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* description);
  ~CheckFailure() noexcept(false);

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the CheckFailure stream so the macro expands to a void
/// expression. `&` binds looser than `<<`, so every streamed operand is
/// evaluated before the voidifier — the glog trick.
struct Voidifier {
  void operator&(std::ostream&) {}
};

}  // namespace check_internal
}  // namespace farmer

#define FARMER_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define FARMER_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))

/// Always-on contract check. Keep the condition cheap (O(1) or amortized
/// into work the caller does anyway); use FARMER_DCHECK for O(n) scans.
#define FARMER_CHECK(condition)                                      \
  FARMER_PREDICT_TRUE(condition)                                     \
  ? (void)0                                                          \
  : ::farmer::check_internal::Voidifier() &                          \
        ::farmer::check_internal::CheckFailure(__FILE__, __LINE__,   \
                                               "CHECK failed: " #condition) \
            .stream()

/// Debug-only contract check: compiled to nothing under NDEBUG (the
/// condition is not evaluated; operands stay odr-used so no -Wunused).
/// Define FARMER_FORCE_DCHECKS to keep them in optimized builds.
#if defined(NDEBUG) && !defined(FARMER_FORCE_DCHECKS)
#define FARMER_DCHECK(condition) FARMER_CHECK(true || (condition))
#else
#define FARMER_DCHECK(condition) FARMER_CHECK(condition)
#endif

/// Checks that a farmer::Status expression is ok(); the failure message
/// includes Status::ToString(). Additional context can be streamed:
///   FARMER_CHECK_OK(st) << "while loading " << path;
/// The loop body runs at most once — CheckFailure's destructor never
/// returns control to it.
#define FARMER_CHECK_OK(expression)                                        \
  for (const ::farmer::Status farmer_internal_check_status = (expression); \
       FARMER_PREDICT_FALSE(!farmer_internal_check_status.ok());)          \
  ::farmer::check_internal::CheckFailure(__FILE__, __LINE__,               \
                                         "CHECK failed: (" #expression     \
                                         ") is OK")                        \
      .stream()                                                            \
      << farmer_internal_check_status.ToString() << ' '

#endif  // FARMER_UTIL_CHECK_H_
